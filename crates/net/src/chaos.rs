//! Seeded fault injection for live transports.
//!
//! [`ChaosNet`] wraps any [`Channel`] with a send-side fault layer:
//! drops, bounded delays, reorders, connection resets (a drop plus a
//! burst of follow-on drops, the shape a TCP RST leaves behind), and
//! one-way partition windows. All *decisions* come from one shared
//! seeded RNG, so two runs with the same seed and the same message
//! sequence draw a byte-identical fault schedule — the live-path
//! analogue of the deterministic machine fault harness
//! (`vl_core::machine::harness`).
//!
//! The wrapper injects faults on the **send** side only: wrapping each
//! node's endpoint is enough to perturb every link, and the receive
//! path stays a plain delegation so blocking semantics are untouched.
//! This holds for the readiness transport too: a wrapped `TcpNode` or
//! `PollNode` still runs its own epoll loop untouched — chaos verdicts
//! apply *before* a frame is handed to the nonblocking send queue, so
//! drops/delays/resets compose with (rather than interfere with) the
//! loop's keepalives, re-dials, and backpressure accounting. The
//! delayed-release thread calls the inner channel's `send` later,
//! which is safe because the readiness transports' send path is a
//! thread-safe command enqueue.
//!
//! Determinism contract: the RNG verdict is drawn for *every* send, in
//! send order, before any wall-clock state (partition windows, reset
//! bursts) is consulted. Consequence drops from those mechanisms are
//! counted but never logged, so [`ChaosNet::schedule`] depends only on
//! `(seed, send sequence)` — never on timing.
//!
//! # Examples
//!
//! ```
//! use vl_net::chaos::{ChaosNet, ChaosProfile};
//! use vl_net::{Channel, InMemoryNetwork, NodeId};
//! use vl_types::{ClientId, ServerId};
//!
//! let net = InMemoryNetwork::new();
//! let chaos = ChaosNet::new(ChaosProfile::Drops.config(42));
//! let client = chaos.wrap(net.endpoint(NodeId::Client(ClientId(1))));
//! let server = net.endpoint(NodeId::Server(ServerId(0)));
//! for _ in 0..20 {
//!     client.send(NodeId::Server(ServerId(0)), bytes::Bytes::from_static(b"m")).unwrap();
//! }
//! chaos.stop(); // faults off; everything in flight flushes
//! # drop(server);
//! ```

use crate::{Channel, NetError, NodeId};
use bytes::Bytes;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration as StdDuration, Instant};

/// Named fault mixes for the CLI (`--chaos-profile`) and tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosProfile {
    /// No faults — the wrapper is a pass-through.
    Off,
    /// Message loss only (10% drop).
    Drops,
    /// Latency only (25% of messages delayed up to 30 ms).
    Delays,
    /// Light loss plus one-way partition windows.
    Partitions,
    /// Everything at once: loss, delay, reorder, resets, partitions.
    Havoc,
}

impl ChaosProfile {
    /// The concrete fault mix for this profile with the given seed.
    pub fn config(self, seed: u64) -> ChaosConfig {
        let base = ChaosConfig {
            seed,
            ..ChaosConfig::default()
        };
        match self {
            ChaosProfile::Off => base,
            ChaosProfile::Drops => ChaosConfig {
                drop_prob: 0.10,
                ..base
            },
            ChaosProfile::Delays => ChaosConfig {
                delay_prob: 0.25,
                max_delay_ms: 30,
                ..base
            },
            ChaosProfile::Partitions => ChaosConfig {
                drop_prob: 0.02,
                partition_prob: 0.01,
                partition_for: StdDuration::from_millis(150),
                ..base
            },
            ChaosProfile::Havoc => ChaosConfig {
                drop_prob: 0.08,
                delay_prob: 0.15,
                max_delay_ms: 25,
                reorder_prob: 0.05,
                reset_prob: 0.02,
                reset_burst: 3,
                partition_prob: 0.005,
                partition_for: StdDuration::from_millis(120),
                ..base
            },
        }
    }
}

impl fmt::Display for ChaosProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ChaosProfile::Off => "off",
            ChaosProfile::Drops => "drops",
            ChaosProfile::Delays => "delays",
            ChaosProfile::Partitions => "partitions",
            ChaosProfile::Havoc => "havoc",
        })
    }
}

impl FromStr for ChaosProfile {
    type Err = String;

    fn from_str(s: &str) -> Result<ChaosProfile, String> {
        match s {
            "off" => Ok(ChaosProfile::Off),
            "drops" => Ok(ChaosProfile::Drops),
            "delays" => Ok(ChaosProfile::Delays),
            "partitions" => Ok(ChaosProfile::Partitions),
            "havoc" => Ok(ChaosProfile::Havoc),
            other => Err(format!(
                "unknown chaos profile {other:?} (expected off|drops|delays|partitions|havoc)"
            )),
        }
    }
}

/// Fault-mix parameters. Probabilities are per-send and evaluated in
/// order drop → delay → reorder → reset → partition; their sum should
/// stay below 1.0 (the remainder delivers cleanly).
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosConfig {
    /// RNG seed; same seed + same send sequence → same schedule.
    pub seed: u64,
    /// Probability a send is silently dropped.
    pub drop_prob: f64,
    /// Probability a send is held back before delivery.
    pub delay_prob: f64,
    /// Upper bound (inclusive, milliseconds) for injected delays.
    pub max_delay_ms: u64,
    /// Probability a send is held until a later send overtakes it.
    pub reorder_prob: f64,
    /// Probability of a connection reset: this send and in-flight
    /// traffic to the peer are lost, plus the next
    /// [`reset_burst`](ChaosConfig::reset_burst) sends on that link.
    pub reset_prob: f64,
    /// Follow-on sends lost after a reset verdict.
    pub reset_burst: u32,
    /// Probability a send opens a one-way partition window on its link.
    pub partition_prob: f64,
    /// Length of an injected partition window.
    pub partition_for: StdDuration,
}

impl Default for ChaosConfig {
    /// All fault probabilities zero (pass-through) with seed 0.
    fn default() -> ChaosConfig {
        ChaosConfig {
            seed: 0,
            drop_prob: 0.0,
            delay_prob: 0.0,
            max_delay_ms: 20,
            reorder_prob: 0.0,
            reset_prob: 0.0,
            reset_burst: 2,
            partition_prob: 0.0,
            partition_for: StdDuration::from_millis(100),
        }
    }
}

/// Counters for one chaos run, split into RNG verdicts and the
/// consequence drops those verdicts caused later (burst/partition).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosCounters {
    /// Sends that passed through the wrapper.
    pub sends: u64,
    /// Sends delivered immediately and untouched.
    pub delivered: u64,
    /// RNG-verdict drops.
    pub dropped: u64,
    /// RNG-verdict delays.
    pub delayed: u64,
    /// RNG-verdict reorder holds.
    pub reordered: u64,
    /// RNG-verdict connection resets.
    pub resets: u64,
    /// RNG-verdict partition windows opened.
    pub partitions: u64,
    /// Drops caused by an active reset burst or partition window.
    pub consequence_dropped: u64,
}

#[derive(Clone, Copy, Debug)]
enum Verdict {
    Deliver,
    Drop,
    Delay(u64),
    Reorder,
    Reset,
    Partition,
}

struct ChaosCore {
    cfg: ChaosConfig,
    rng: StdRng,
    seq: u64,
    active: bool,
    /// Fault schedule: one line per RNG-decided fault, in send order.
    log: Vec<String>,
    /// Remaining forced drops per directed link after a reset.
    bursts: HashMap<(NodeId, NodeId), u32>,
    /// One-way partition windows: directed link → expiry.
    windows: HashMap<(NodeId, NodeId), Instant>,
    counters: ChaosCounters,
}

impl ChaosCore {
    /// Draws the verdict for one send. Always consumes the RNG in the
    /// same pattern for a given verdict sequence, so the schedule is a
    /// pure function of `(seed, send order)`.
    fn verdict(&mut self, from: NodeId, to: NodeId) -> Verdict {
        let seq = self.seq;
        self.seq += 1;
        self.counters.sends += 1;
        if !self.active {
            self.counters.delivered += 1;
            return Verdict::Deliver;
        }
        let c = self.cfg.clone();
        let roll: f64 = self.rng.gen();
        let mut edge = c.drop_prob;
        let verdict = if roll < edge {
            Verdict::Drop
        } else if roll < {
            edge += c.delay_prob;
            edge
        } {
            Verdict::Delay(self.rng.gen_range(1..=c.max_delay_ms.max(1)))
        } else if roll < {
            edge += c.reorder_prob;
            edge
        } {
            Verdict::Reorder
        } else if roll < {
            edge += c.reset_prob;
            edge
        } {
            Verdict::Reset
        } else if roll < {
            edge += c.partition_prob;
            edge
        } {
            Verdict::Partition
        } else {
            Verdict::Deliver
        };
        match verdict {
            Verdict::Deliver => {}
            Verdict::Drop => {
                self.counters.dropped += 1;
                self.log.push(format!("{seq} drop"));
            }
            Verdict::Delay(ms) => {
                self.counters.delayed += 1;
                self.log.push(format!("{seq} delay {ms}"));
            }
            Verdict::Reorder => {
                self.counters.reordered += 1;
                self.log.push(format!("{seq} reorder"));
            }
            Verdict::Reset => {
                self.counters.resets += 1;
                self.log.push(format!("{seq} reset"));
                if c.reset_burst > 0 {
                    self.bursts.insert((from, to), c.reset_burst);
                }
            }
            Verdict::Partition => {
                self.counters.partitions += 1;
                self.log.push(format!("{seq} partition"));
                self.windows
                    .insert((from, to), Instant::now() + c.partition_for);
            }
        }
        verdict
    }

    /// Post-verdict overrides from earlier faults. Kept out of the log
    /// because burst progress and window expiry depend on timing.
    fn suppressed(&mut self, from: NodeId, to: NodeId) -> bool {
        if !self.active {
            return false;
        }
        if let Some(left) = self.bursts.get_mut(&(from, to)) {
            *left -= 1;
            if *left == 0 {
                self.bursts.remove(&(from, to));
            }
            self.counters.consequence_dropped += 1;
            return true;
        }
        match self.windows.get(&(from, to)) {
            Some(until) if Instant::now() < *until => {
                self.counters.consequence_dropped += 1;
                true
            }
            Some(_) => {
                self.windows.remove(&(from, to));
                false
            }
            None => false,
        }
    }
}

/// A shared fault injector. One `ChaosNet` [`wrap`](ChaosNet::wrap)s
/// any number of endpoints; all of them draw verdicts from the same
/// seeded schedule, in global send order.
#[derive(Clone)]
pub struct ChaosNet {
    core: Arc<Mutex<ChaosCore>>,
}

impl fmt::Debug for ChaosNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let core = self.core.lock();
        f.debug_struct("ChaosNet")
            .field("seed", &core.cfg.seed)
            .field("active", &core.active)
            .field("sends", &core.counters.sends)
            .finish()
    }
}

impl ChaosNet {
    /// Creates an injector with the given fault mix, initially active.
    pub fn new(cfg: ChaosConfig) -> ChaosNet {
        let rng = StdRng::seed_from_u64(cfg.seed);
        ChaosNet {
            core: Arc::new(Mutex::new(ChaosCore {
                cfg,
                rng,
                seq: 0,
                active: true,
                log: Vec::new(),
                bursts: HashMap::new(),
                windows: HashMap::new(),
                counters: ChaosCounters::default(),
            })),
        }
    }

    /// Wraps `inner` so every send draws a fault verdict first. The
    /// returned endpoint implements [`Channel`] and delegates receives
    /// untouched.
    pub fn wrap<C: Channel + 'static>(&self, inner: C) -> ChaosEndpoint {
        self.wrap_arc(Arc::new(inner))
    }

    /// [`wrap`](ChaosNet::wrap) for an already-shared channel.
    pub fn wrap_arc(&self, inner: Arc<dyn Channel>) -> ChaosEndpoint {
        let delayed: Arc<Mutex<Vec<Parked>>> = Arc::new(Mutex::new(Vec::new()));
        let held: Arc<Mutex<Option<Parked>>> = Arc::new(Mutex::new(None));
        let closed = Arc::new(AtomicBool::new(false));
        let pump = {
            let inner = Arc::clone(&inner);
            let delayed = Arc::clone(&delayed);
            let held = Arc::clone(&held);
            let closed = Arc::clone(&closed);
            let core = Arc::clone(&self.core);
            std::thread::Builder::new()
                .name(format!("chaos-pump-{}", inner.id()))
                .spawn(move || {
                    while !closed.load(Ordering::SeqCst) {
                        std::thread::sleep(PUMP_TICK);
                        let flush_all = !core.lock().active;
                        pump_once(&inner, &delayed, &held, flush_all);
                    }
                    // Final flush so no message is stranded at shutdown.
                    pump_once(&inner, &delayed, &held, true);
                })
                .expect("spawn chaos pump")
        };
        ChaosEndpoint {
            inner,
            core: Arc::clone(&self.core),
            delayed,
            held,
            closed,
            pump: Mutex::new(Some(pump)),
        }
    }

    /// Turns all fault injection off. In-flight delayed/held messages
    /// flush within one pump tick; burst and partition state clears, so
    /// the network delivers cleanly from here on — the "faults stop"
    /// half of a liveness test.
    pub fn stop(&self) {
        let mut core = self.core.lock();
        core.active = false;
        core.bursts.clear();
        core.windows.clear();
    }

    /// Re-enables fault injection after [`stop`](ChaosNet::stop).
    pub fn resume(&self) {
        self.core.lock().active = true;
    }

    /// Explicitly opens a one-way partition window from `from` to `to`
    /// for `dur` — deterministic test hook, no RNG involved.
    pub fn partition_one_way(&self, from: NodeId, to: NodeId, dur: StdDuration) {
        self.core
            .lock()
            .windows
            .insert((from, to), Instant::now() + dur);
    }

    /// The RNG-decided fault schedule so far, one line per fault
    /// (`"<seq> drop"`, `"<seq> delay <ms>"`, …). Byte-identical for
    /// equal seeds and send sequences.
    pub fn schedule(&self) -> String {
        self.core.lock().log.join("\n")
    }

    /// Snapshot of fault counters.
    pub fn counters(&self) -> ChaosCounters {
        self.core.lock().counters
    }
}

/// A message parked by a delay or reorder verdict.
struct Parked {
    due: Instant,
    seq: u64,
    to: NodeId,
    bytes: Bytes,
}

const PUMP_TICK: StdDuration = StdDuration::from_millis(5);
/// How long a reorder hold lasts if no later send overtakes it.
const REORDER_HOLD: StdDuration = StdDuration::from_millis(25);

fn pump_once(
    inner: &Arc<dyn Channel>,
    delayed: &Mutex<Vec<Parked>>,
    held: &Mutex<Option<Parked>>,
    flush_all: bool,
) {
    let now = Instant::now();
    let due: Vec<Parked> = {
        let mut parked = delayed.lock();
        let mut due: Vec<Parked> = Vec::new();
        let mut keep: Vec<Parked> = Vec::new();
        for p in parked.drain(..) {
            if flush_all || p.due <= now {
                due.push(p);
            } else {
                keep.push(p);
            }
        }
        *parked = keep;
        due.sort_by_key(|p| (p.due, p.seq));
        due
    };
    for p in due {
        let _ = inner.send(p.to, p.bytes);
    }
    let release = {
        let mut h = held.lock();
        match h.as_ref() {
            Some(p) if flush_all || p.due <= now => h.take(),
            _ => None,
        }
    };
    if let Some(p) = release {
        let _ = inner.send(p.to, p.bytes);
    }
}

/// A fault-injecting view of an inner [`Channel`]. Created by
/// [`ChaosNet::wrap`]; drop it to stop its background pump.
pub struct ChaosEndpoint {
    inner: Arc<dyn Channel>,
    core: Arc<Mutex<ChaosCore>>,
    delayed: Arc<Mutex<Vec<Parked>>>,
    held: Arc<Mutex<Option<Parked>>>,
    closed: Arc<AtomicBool>,
    pump: Mutex<Option<JoinHandle<()>>>,
}

impl fmt::Debug for ChaosEndpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChaosEndpoint")
            .field("id", &self.inner.id())
            .field("delayed", &self.delayed.lock().len())
            .finish()
    }
}

impl Channel for ChaosEndpoint {
    fn id(&self) -> NodeId {
        self.inner.id()
    }

    fn send(&self, to: NodeId, bytes: Bytes) -> Result<(), NetError> {
        let from = self.inner.id();
        let (verdict, seq, suppressed) = {
            let mut core = self.core.lock();
            // Verdict is drawn unconditionally (RNG stream stays a pure
            // function of send order); overrides apply afterwards, and
            // only to verdicts that would otherwise deliver — a message
            // the verdict already dropped can't be dropped again.
            let v = core.verdict(from, to);
            let seq = core.seq - 1;
            let sup = matches!(v, Verdict::Deliver | Verdict::Delay(_) | Verdict::Reorder)
                && core.suppressed(from, to);
            (v, seq, sup)
        };
        if suppressed {
            return Ok(());
        }
        match verdict {
            Verdict::Deliver => {
                let out = self.inner.send(to, bytes);
                // A clean delivery overtakes any held (reordered)
                // message: release it now, out of order.
                let release = self.held.lock().take();
                if let Some(p) = release {
                    let _ = self.inner.send(p.to, p.bytes);
                }
                self.core.lock().counters.delivered += 1;
                out
            }
            Verdict::Drop | Verdict::Reset | Verdict::Partition => Ok(()),
            Verdict::Delay(ms) => {
                self.delayed.lock().push(Parked {
                    due: Instant::now() + StdDuration::from_millis(ms),
                    seq,
                    to,
                    bytes,
                });
                Ok(())
            }
            Verdict::Reorder => {
                let evicted = self.held.lock().replace(Parked {
                    due: Instant::now() + REORDER_HOLD,
                    seq,
                    to,
                    bytes,
                });
                if let Some(p) = evicted {
                    let _ = self.inner.send(p.to, p.bytes);
                }
                Ok(())
            }
        }
    }

    fn recv_timeout(&self, timeout: StdDuration) -> Result<(NodeId, Bytes), NetError> {
        self.inner.recv_timeout(timeout)
    }

    fn take_disconnected(&self) -> Vec<NodeId> {
        self.inner.take_disconnected()
    }

    fn take_connected(&self) -> Vec<NodeId> {
        self.inner.take_connected()
    }

    fn wire_stats(&self) -> Option<crate::WireStats> {
        // Queue accounting describes the real transport underneath;
        // chaos drops happen before frames reach those queues.
        self.inner.wire_stats()
    }

    fn shard_stats(&self) -> Option<Vec<crate::shard::ShardStats>> {
        self.inner.shard_stats()
    }
}

impl Drop for ChaosEndpoint {
    fn drop(&mut self) {
        self.closed.store(true, Ordering::SeqCst);
        if let Some(h) = self.pump.lock().take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InMemoryNetwork;
    use vl_types::{ClientId, ServerId};

    fn c(n: u32) -> NodeId {
        NodeId::Client(ClientId(n))
    }
    fn s(n: u32) -> NodeId {
        NodeId::Server(ServerId(n))
    }

    #[test]
    fn off_profile_is_a_pass_through() {
        let net = InMemoryNetwork::new();
        let chaos = ChaosNet::new(ChaosProfile::Off.config(1));
        let a = chaos.wrap(net.endpoint(c(1)));
        let b = net.endpoint(s(0));
        for i in 0..10u32 {
            a.send(s(0), Bytes::from(i.to_le_bytes().to_vec())).unwrap();
        }
        for i in 0..10u32 {
            let (_, frame) = b.recv_timeout(StdDuration::from_secs(1)).unwrap();
            assert_eq!(&frame[..], &i.to_le_bytes());
        }
        assert_eq!(chaos.counters().delivered, 10);
        assert!(chaos.schedule().is_empty());
    }

    #[test]
    fn drops_lose_roughly_the_configured_fraction() {
        let net = InMemoryNetwork::new();
        let chaos = ChaosNet::new(ChaosConfig {
            seed: 7,
            drop_prob: 0.5,
            ..ChaosConfig::default()
        });
        let a = chaos.wrap(net.endpoint(c(1)));
        let _b = net.endpoint(s(0));
        for _ in 0..400 {
            a.send(s(0), Bytes::from_static(b"x")).unwrap();
        }
        let ctr = chaos.counters();
        assert!(
            ctr.dropped > 120 && ctr.dropped < 280,
            "dropped={}",
            ctr.dropped
        );
        assert_eq!(ctr.dropped + ctr.delivered, 400);
    }

    #[test]
    fn delayed_messages_arrive_after_faults_stop() {
        let net = InMemoryNetwork::new();
        let chaos = ChaosNet::new(ChaosConfig {
            seed: 3,
            delay_prob: 1.0,
            max_delay_ms: 50,
            ..ChaosConfig::default()
        });
        let a = chaos.wrap(net.endpoint(c(1)));
        let b = net.endpoint(s(0));
        for _ in 0..5 {
            a.send(s(0), Bytes::from_static(b"late")).unwrap();
        }
        chaos.stop();
        let mut got = 0;
        while b.recv_timeout(StdDuration::from_millis(500)).is_ok() {
            got += 1;
            if got == 5 {
                break;
            }
        }
        assert_eq!(got, 5, "stop() must flush all delayed messages");
    }

    #[test]
    fn reset_burst_drops_following_sends_on_the_link() {
        let net = InMemoryNetwork::new();
        let chaos = ChaosNet::new(ChaosConfig::default());
        let a = chaos.wrap(net.endpoint(c(1)));
        let b = net.endpoint(s(0));
        // Arm a burst as a Reset verdict would: the next two sends on
        // the link are lost, the third goes through.
        chaos.core.lock().bursts.insert((c(1), s(0)), 2);
        for i in 0..3u8 {
            a.send(s(0), Bytes::from(vec![i])).unwrap();
        }
        let ctr = chaos.counters();
        assert_eq!(ctr.consequence_dropped, 2, "burst ate the first two");
        assert_eq!(ctr.delivered, 1);
        let (_, frame) = b.recv_timeout(StdDuration::from_secs(1)).unwrap();
        assert_eq!(&frame[..], &[2u8], "only the post-burst send lands");
        assert!(b.recv_timeout(StdDuration::from_millis(50)).is_err());
    }

    #[test]
    fn explicit_one_way_partition_cuts_only_that_direction() {
        let net = InMemoryNetwork::new();
        let chaos = ChaosNet::new(ChaosProfile::Off.config(0));
        let a = chaos.wrap(net.endpoint(c(1)));
        let b = chaos.wrap(net.endpoint(s(0)));
        chaos.partition_one_way(c(1), s(0), StdDuration::from_secs(10));
        a.send(s(0), Bytes::from_static(b"cut")).unwrap();
        assert!(b.recv_timeout(StdDuration::from_millis(80)).is_err());
        b.send(c(1), Bytes::from_static(b"back")).unwrap();
        assert_eq!(
            &a.recv_timeout(StdDuration::from_secs(1)).unwrap().1[..],
            b"back",
            "reverse direction unaffected"
        );
    }

    #[test]
    fn same_seed_same_sends_byte_identical_schedule() {
        let run = |seed: u64| {
            let net = InMemoryNetwork::new();
            let chaos = ChaosNet::new(ChaosConfig {
                seed,
                drop_prob: 0.2,
                delay_prob: 0.2,
                max_delay_ms: 10,
                reorder_prob: 0.1,
                reset_prob: 0.05,
                // No partitions: window expiry is wall-clock and would
                // let timing shift which sends get suppressed (the log
                // itself would still match, but keep the runs fully
                // identical).
                ..ChaosConfig::default()
            });
            let a = chaos.wrap(net.endpoint(c(1)));
            let _b = net.endpoint(s(0));
            for i in 0..200u32 {
                a.send(s(0), Bytes::from(i.to_le_bytes().to_vec())).unwrap();
            }
            (chaos.schedule(), chaos.counters())
        };
        let (log1, ctr1) = run(42);
        let (log2, ctr2) = run(42);
        assert_eq!(log1, log2, "same seed must replay the same schedule");
        assert!(!log1.is_empty());
        assert_eq!(ctr1, ctr2);
        let (log3, _) = run(43);
        assert_ne!(log1, log3, "different seed, different schedule");
    }

    #[test]
    fn reorder_swaps_with_the_next_delivery() {
        let net = InMemoryNetwork::new();
        let chaos = ChaosNet::new(ChaosConfig::default());
        let a = chaos.wrap(net.endpoint(c(1)));
        let b = net.endpoint(s(0));
        // Drive the reorder path deterministically through the held
        // slot: hold "first" by hand, then a clean send releases it.
        a.held.lock().replace(Parked {
            due: Instant::now() + StdDuration::from_secs(5),
            seq: 0,
            to: s(0),
            bytes: Bytes::from_static(b"first"),
        });
        a.send(s(0), Bytes::from_static(b"second")).unwrap();
        let one = b.recv_timeout(StdDuration::from_secs(1)).unwrap().1;
        let two = b.recv_timeout(StdDuration::from_secs(1)).unwrap().1;
        assert_eq!(&one[..], b"second");
        assert_eq!(&two[..], b"first");
    }

    #[test]
    fn profile_parsing_roundtrips() {
        for p in [
            ChaosProfile::Off,
            ChaosProfile::Drops,
            ChaosProfile::Delays,
            ChaosProfile::Partitions,
            ChaosProfile::Havoc,
        ] {
            assert_eq!(p.to_string().parse::<ChaosProfile>().unwrap(), p);
        }
        assert!("frogs".parse::<ChaosProfile>().is_err());
    }
}
