//! Randomized (seeded, deterministic) tests for the metrics sink:
//! histogram and integral math checked against naive recomputation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vl_metrics::{LoadTracker, MessageKind, Metrics, StateIntegral};
use vl_types::{ClientId, Duration, ServerId, Timestamp};

/// The cumulative load histogram agrees with a naive O(n²) count for
/// every queried level, and the curve is strictly decreasing.
#[test]
fn load_histogram_matches_naive() {
    let mut rng = StdRng::seed_from_u64(0x10ad);
    for case in 0..128 {
        let times: Vec<u64> = (0..rng.gen_range(1usize..300))
            .map(|_| rng.gen_range(0u64..200))
            .collect();
        let server = ServerId(0);
        let mut tracker = LoadTracker::tracking([server]);
        for &t in &times {
            tracker.record(server, Timestamp::from_secs(t));
        }
        // Naive per-second counts.
        let mut counts = std::collections::HashMap::new();
        for &t in &times {
            *counts.entry(t).or_insert(0u64) += 1;
        }
        let hist = tracker.histogram(server).unwrap();
        for x in 1..=times.len() as u64 + 1 {
            let naive = counts.values().filter(|&&c| c >= x).count() as u64;
            let fast = hist.periods_with_load_at_least(x);
            assert_eq!(fast, naive, "case {case}, level {x}");
        }
        assert_eq!(hist.peak(), counts.values().copied().max().unwrap());
        assert_eq!(hist.busy_periods(), counts.len() as u64);
        let curve = hist.cumulative_curve();
        assert!(curve.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 > w[1].1));
        // The curve's first point covers all busy periods.
        assert_eq!(curve[0].1, counts.len() as u64);
    }
}

/// The state integral is additive and linear in bytes and time.
#[test]
fn state_integral_is_additive() {
    let mut rng = StdRng::seed_from_u64(0x57a7e);
    for case in 0..256 {
        let chunks: Vec<(u64, u64)> = (0..rng.gen_range(1usize..50))
            .map(|_| (rng.gen_range(1u64..100), rng.gen_range(1u64..10_000)))
            .collect();
        let server = ServerId(1);
        let mut integral = StateIntegral::new();
        let mut expected: u128 = 0;
        for &(bytes, ms) in &chunks {
            integral.add(server, bytes, Duration::from_millis(ms));
            expected += u128::from(bytes) * u128::from(ms);
        }
        assert_eq!(integral.raw_byte_ms(server), expected, "case {case}");
        let span = Duration::from_millis(10_000);
        let avg = integral.average(server, span);
        assert!(
            (avg - expected as f64 / 10_000.0).abs() < 1e-6,
            "case {case}"
        );
    }
}

/// Message totals decompose exactly into per-kind counts, and
/// per-server plus per-client views agree with the global totals.
#[test]
fn message_accounting_balances() {
    let mut rng = StdRng::seed_from_u64(0xba1a);
    for case in 0..256 {
        let msgs: Vec<(usize, u32, u32, u64)> = (0..rng.gen_range(0usize..200))
            .map(|_| {
                (
                    rng.gen_range(0usize..MessageKind::ALL.len()),
                    rng.gen_range(0u32..4),
                    rng.gen_range(0u32..4),
                    rng.gen_range(0u64..2000),
                )
            })
            .collect();
        let mut m = Metrics::new();
        for &(kind, server, client, bytes) in &msgs {
            m.count_msg(
                MessageKind::ALL[kind],
                ServerId(server),
                ClientId(client),
                bytes,
                Timestamp::ZERO,
            );
        }
        assert_eq!(m.total_messages(), msgs.len() as u64, "case {case}");
        let per_kind: u64 = MessageKind::ALL
            .iter()
            .map(|&k| m.message_counters().count(k))
            .sum();
        assert_eq!(per_kind, msgs.len() as u64, "case {case}");
        let per_server: u64 = (0..4).map(|s| m.server_messages(ServerId(s))).sum();
        assert_eq!(per_server, msgs.len() as u64, "case {case}");
        let per_client: u64 = (0..4).map(|c| m.client_messages(ClientId(c))).sum();
        assert_eq!(per_client, msgs.len() as u64, "case {case}");
        let bytes: u64 = msgs.iter().map(|&(_, _, _, b)| b).sum();
        assert_eq!(m.total_bytes(), bytes, "case {case}");
    }
}

/// Every [`vl_metrics::Histogram`] percentile sits within the advertised
/// 17/16 relative error of the same-rank element of the sorted sample
/// vector, and the extremes are exact.
#[test]
fn histogram_percentiles_match_sorted_oracle() {
    use vl_metrics::Histogram;
    let mut rng = StdRng::seed_from_u64(0x4157);
    for case in 0..128 {
        let samples: Vec<u64> = (0..rng.gen_range(1usize..400))
            .map(|_| {
                // Mix magnitudes so both the exact region and several
                // power-of-two groups are exercised.
                let bits = rng.gen_range(0u32..40);
                rng.gen_range(0u64..2u64.saturating_pow(bits).max(2))
            })
            .collect();
        let mut h = Histogram::new();
        let mut sorted = samples.clone();
        for &v in &samples {
            h.record(v);
        }
        sorted.sort_unstable();
        assert_eq!(h.count(), sorted.len() as u64, "case {case}");
        assert_eq!(h.min(), sorted[0], "case {case}");
        assert_eq!(h.max(), *sorted.last().unwrap(), "case {case}");
        assert_eq!(h.percentile(1.0), h.max(), "case {case}");
        for &q in &[0.01, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let oracle = sorted[rank - 1];
            let got = h.percentile(q);
            assert!(got >= oracle, "case {case} q={q}: {got} < oracle {oracle}");
            assert!(
                got as u128 * 16 <= (oracle as u128).max(1) * 17,
                "case {case} q={q}: {got} above 17/16 of oracle {oracle}"
            );
        }
    }
}

/// Merging the per-shard histograms of an arbitrarily sharded sample set
/// reproduces the single-threaded histogram *exactly* — bucket counts,
/// extremes, sum, and therefore every percentile.
#[test]
fn histogram_shard_merge_equals_single_threaded() {
    use vl_metrics::Histogram;
    let mut rng = StdRng::seed_from_u64(0x5a4d);
    for case in 0..128 {
        let shards = rng.gen_range(1usize..9);
        let samples: Vec<(usize, u64)> = (0..rng.gen_range(0usize..500))
            .map(|_| {
                (
                    rng.gen_range(0..shards),
                    rng.gen::<u64>() >> rng.gen_range(0u32..64),
                )
            })
            .collect();
        let mut single = Histogram::new();
        let mut per_shard = vec![Histogram::new(); shards];
        for &(shard, v) in &samples {
            single.record(v);
            per_shard[shard].record(v);
        }
        let mut merged = Histogram::new();
        for shard in &per_shard {
            merged.merge(shard);
        }
        assert_eq!(merged, single, "case {case} ({shards} shards)");
        for &q in &[0.5, 0.9, 0.99] {
            assert_eq!(merged.percentile(q), single.percentile(q), "case {case}");
        }
    }
}
