//! Exact time-weighted server-state accounting.

use vl_types::{Duration, ServerId};

/// Accumulates `bytes × lifetime` per server.
///
/// The consistency protocols know the exact lifetime of every piece of
/// state they hold — a lease record lives from grant to expiry (or early
/// revocation), a callback from registration to invalidation, a pending
/// message from enqueue to delivery or discard. Each record reports its
/// contribution once, so the average reported for Figures 6–7 is exact
/// rather than sampled.
///
/// # Examples
///
/// ```
/// use vl_metrics::StateIntegral;
/// use vl_types::{Duration, ServerId};
///
/// let mut s = StateIntegral::new();
/// // one 16-byte record held for 10 of 100 seconds → 1.6 bytes average
/// s.add(ServerId(0), 16, Duration::from_secs(10));
/// assert!((s.average(ServerId(0), Duration::from_secs(100)) - 1.6).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, Default, Eq)]
pub struct StateIntegral {
    /// byte·milliseconds, indexed densely by server id; servers never
    /// charged may fall beyond the end (implicitly zero).
    byte_ms: Vec<u128>,
}

impl PartialEq for StateIntegral {
    fn eq(&self, other: &StateIntegral) -> bool {
        // Trailing zero slots are representation artifacts, not state.
        let (short, long) = if self.byte_ms.len() <= other.byte_ms.len() {
            (&self.byte_ms, &other.byte_ms)
        } else {
            (&other.byte_ms, &self.byte_ms)
        };
        long[..short.len()] == short[..] && long[short.len()..].iter().all(|&v| v == 0)
    }
}

impl StateIntegral {
    /// Creates an empty integral.
    pub fn new() -> StateIntegral {
        StateIntegral::default()
    }

    /// Adds `bytes` of state held for `lifetime` at `server`.
    ///
    /// Infinite lifetimes are rejected: callers must clip open-ended state
    /// (e.g. callbacks) to the end of the simulated span first.
    ///
    /// # Panics
    ///
    /// Panics if `lifetime` is the infinite sentinel.
    pub fn add(&mut self, server: ServerId, bytes: u64, lifetime: Duration) {
        assert!(
            !lifetime.is_infinite(),
            "state lifetime must be clipped to the simulation span"
        );
        let i = server.raw() as usize;
        if self.byte_ms.len() <= i {
            self.byte_ms.resize(i + 1, 0);
        }
        self.byte_ms[i] += u128::from(bytes) * u128::from(lifetime.as_millis());
    }

    /// The raw integral for `server`, in byte·milliseconds.
    pub fn raw_byte_ms(&self, server: ServerId) -> u128 {
        self.byte_ms
            .get(server.raw() as usize)
            .copied()
            .unwrap_or(0)
    }

    /// Time-weighted average bytes at `server` over a span.
    ///
    /// Returns 0.0 for an empty span.
    pub fn average(&self, server: ServerId, span: Duration) -> f64 {
        if span.is_zero() {
            return 0.0;
        }
        self.raw_byte_ms(server) as f64 / span.as_millis() as f64
    }

    /// Servers ranked by state integral, largest first.
    pub fn heaviest_servers(&self) -> Vec<(ServerId, u128)> {
        let mut v: Vec<_> = self
            .byte_ms
            .iter()
            .enumerate()
            .filter(|&(_, &i)| i > 0)
            .map(|(s, &i)| (ServerId(s as u32), i))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_server() {
        let mut s = StateIntegral::new();
        s.add(ServerId(1), 16, Duration::from_secs(5));
        s.add(ServerId(1), 16, Duration::from_secs(5));
        s.add(ServerId(2), 32, Duration::from_secs(1));
        assert_eq!(s.raw_byte_ms(ServerId(1)), 16 * 5000 * 2);
        assert_eq!(s.raw_byte_ms(ServerId(2)), 32_000);
        assert_eq!(s.raw_byte_ms(ServerId(3)), 0);
    }

    #[test]
    fn average_over_span() {
        let mut s = StateIntegral::new();
        s.add(ServerId(0), 100, Duration::from_secs(50));
        assert!((s.average(ServerId(0), Duration::from_secs(100)) - 50.0).abs() < 1e-9);
        assert_eq!(s.average(ServerId(0), Duration::ZERO), 0.0);
    }

    #[test]
    fn heaviest_ranks_descending() {
        let mut s = StateIntegral::new();
        s.add(ServerId(1), 16, Duration::from_secs(1));
        s.add(ServerId(2), 16, Duration::from_secs(10));
        let top = s.heaviest_servers();
        assert_eq!(top[0].0, ServerId(2));
        assert_eq!(top[1].0, ServerId(1));
    }

    #[test]
    #[should_panic(expected = "clipped")]
    fn infinite_lifetime_rejected() {
        StateIntegral::new().add(ServerId(0), 16, Duration::MAX);
    }

    #[test]
    fn zero_bytes_contributes_nothing() {
        let mut s = StateIntegral::new();
        s.add(ServerId(0), 0, Duration::from_secs(100));
        assert!(s.heaviest_servers().is_empty());
    }
}
