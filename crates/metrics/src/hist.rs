//! Log-bucketed (HDR-style) latency/size histogram.
//!
//! Values are `u64` in whatever unit the caller picks (milliseconds for
//! latencies, plain counts for batch sizes). Small values (< 16) are
//! recorded exactly; larger values fall into power-of-two groups split
//! into 16 linear sub-buckets, so any reported quantile overestimates
//! the true sample by at most a factor of 17/16 (≈ 6.25% relative
//! error) while the histogram itself stays a few KiB at most.
//!
//! Two properties the test-suite leans on:
//!
//! * **Lossless merge** — bucket counts simply add, so merging the
//!   per-shard histograms of a parallel sweep yields *exactly* the
//!   histogram a single-threaded run would have produced.
//! * **Exact extremes** — `min`, `max`, `count`, and `sum` are tracked
//!   outside the buckets, so `p100` (and the reported maximum write
//!   delay) are exact, not bucket upper bounds.

/// Number of linear sub-buckets per power-of-two group (and the size of
/// the exact region at the bottom of the value range).
const SUB: u64 = 16;
/// log2 of [`SUB`].
const SUB_BITS: u32 = 4;

/// A mergeable log-bucketed histogram of `u64` samples.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Bucket counts, indexed by [`bucket_index`]; grown on demand.
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// Maps a value to its bucket index. Monotonic in `value`, identity for
/// `value < 16`, and contiguous across the linear/log boundary.
fn bucket_index(value: u64) -> usize {
    if value < SUB {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros(); // >= SUB_BITS
    let shift = msb - SUB_BITS;
    let sub = ((value >> shift) & (SUB - 1)) as usize;
    ((shift as usize + 1) << SUB_BITS) + sub
}

/// Largest value mapping into bucket `index` (inclusive upper bound).
fn bucket_upper_bound(index: usize) -> u64 {
    let group = index >> SUB_BITS;
    let sub = (index & (SUB as usize - 1)) as u64;
    if group == 0 {
        return index as u64; // exact region
    }
    let shift = group as u32 - 1;
    // The top group's bound exceeds u64::MAX by one; clamp instead of
    // overflowing.
    let bound = ((SUB + sub + 1) as u128) << shift;
    (bound - 1).min(u64::MAX as u128) as u64
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical samples.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = bucket_index(value);
        if self.counts.len() <= idx {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += n;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the inclusive upper bound of
    /// the bucket holding the sample of rank `ceil(q · count)`, clamped
    /// to the exact maximum. Returns 0 when empty.
    ///
    /// Guarantee: `oracle ≤ percentile(q) ≤ oracle · 17/16`, where
    /// `oracle` is the same-rank element of the sorted sample vector
    /// (values map monotonically to buckets, so sorted order groups by
    /// bucket and the rank lands in the same bucket either way).
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(idx).min(self.max);
            }
        }
        self.max
    }

    /// Median (`percentile(0.50)`).
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Adds every sample of `other` into `self`. Lossless: bucket
    /// counts add, so the merge of a run's shards equals the histogram
    /// of the unsharded run exactly.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, &src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Non-empty buckets as `(inclusive upper bound, count)` pairs, in
    /// increasing value order — the mergeable wire representation.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_upper_bound(i), n))
    }

    /// One-line summary: `n=…, p50=…, p90=…, p99=…, max=…`.
    pub fn summary_line(&self) -> String {
        format!(
            "n={} p50={} p90={} p99={} max={}",
            self.count,
            self.p50(),
            self.p90(),
            self.p99(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..16 {
            h.record(v);
        }
        for (i, (ub, n)) in h.buckets().enumerate() {
            assert_eq!(ub, i as u64);
            assert_eq!(n, 1);
        }
    }

    #[test]
    fn index_is_monotonic_and_bound_is_inclusive() {
        let mut prev = 0;
        for v in (0..4096).chain([u64::MAX / 2, u64::MAX - 1, u64::MAX]) {
            let idx = bucket_index(v);
            assert!(idx >= prev, "index not monotonic at {v}");
            prev = idx;
            assert!(bucket_upper_bound(idx) >= v, "ub below value at {v}");
            // relative error bound: ub < 17/16 · max(v, 1)
            let ub = bucket_upper_bound(idx) as u128;
            assert!(ub * 16 <= (v as u128).max(1) * 17, "error too large at {v}");
        }
    }

    #[test]
    fn percentiles_and_extremes() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        let p50 = h.p50();
        assert!((500..=532).contains(&p50), "p50 = {p50}");
        assert_eq!(h.percentile(1.0), 1000); // exact max
    }

    #[test]
    fn merge_is_lossless() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in 0..500u64 {
            let v = v * v % 7919;
            whole.record(v);
            if v % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }
}
