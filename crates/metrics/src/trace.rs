//! Structured protocol-event tracing.
//!
//! A [`TraceSink`] receives a stream of typed [`Event`]s from whatever
//! layer is running the protocol — the trace-driven simulator (virtual
//! timestamps) or the live drivers (wall-clock milliseconds since
//! start). Three sinks are provided:
//!
//! * [`NullSink`] — discards everything; the default, so tracing costs
//!   one untaken branch per event when disabled;
//! * [`RingSink`] — keeps the last *n* events in memory, for tests and
//!   post-mortem dumps;
//! * [`JsonlSink`] — writes one JSON object per line to any
//!   `io::Write`, the format `vl report` consumes.
//!
//! The JSONL encoding is hand-rolled (the workspace is offline — no
//! serde): every field is an integer or a fixed identifier, zero-valued
//! optional fields are omitted, and [`parse_line`] inverts
//! [`Event::to_json`] exactly. A run label line (`{"run":"…"}`, see
//! [`JsonlSink::begin_run`]) groups the events that follow it, which is
//! how one trace file carries several algorithms for a per-algorithm
//! report.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::{self, Write};

use crate::MessageKind;
use vl_types::{ClientId, ObjectId, ServerId, Timestamp, VolumeId};

/// What happened — the typed event vocabulary of the protocol stack.
///
/// Variants are fieldless; the event's ids and the meaning of
/// [`Event::value`]/[`Event::extra`] are documented per variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// A one-way wire message; `msg` holds the kind, `value` the bytes.
    Message,
    /// An object lease was granted (first issue); `object` set.
    LeaseGranted,
    /// An object lease was renewed; `object` set.
    LeaseRenewed,
    /// An object lease expired or was relinquished; `object` set.
    LeaseExpired,
    /// A volume lease was granted or renewed; `volume` set.
    VolumeLeaseGranted,
    /// An invalidation was sent to a reachable client; `object` set.
    InvalidationSent,
    /// A client acknowledged an invalidation; `object` set.
    InvalidationAcked,
    /// An invalidation was queued for a client whose volume lease had
    /// lapsed (delayed invalidations, §3.2); `object` set.
    InvalidationQueued,
    /// A queued invalidation was discarded after the inactive-discard
    /// interval `d`; `value` is the number of records dropped.
    InvalidationDiscarded,
    /// A batch of queued invalidations was delivered at volume renewal;
    /// `value` is the batch size.
    InvalidationBatch,
    /// A client was demoted Inactive → Unreachable.
    ClientDemoted,
    /// An unreachable client completed the §3.1.1 reconnection protocol.
    Reconnected,
    /// A write was classified against current holders; `value` is the
    /// number of invalidations sent, `extra` the number queued.
    WriteClassified,
    /// A write committed; `value` is its delay in milliseconds, `extra`
    /// is 1 if the server waited out leases instead of collecting acks.
    WriteCommitted,
    /// A client read completed; `value` is 1 if the data was stale,
    /// `extra` the observed latency in milliseconds (0 in simulation).
    Read,
    /// A lease-renewal round-trip completed; `value` is the round-trip
    /// time in milliseconds.
    RenewalRtt,
    /// A client lost its live server connection and entered degraded
    /// mode (cached reads stay legal until leases lapse); `server` set.
    Degraded,
    /// A degraded client's connection came back and the reconnection
    /// probe ran; `server` set, `value` the spell length in
    /// milliseconds.
    Recovered,
    /// Transport send-queue gauge for one peer, sampled periodically by
    /// the live server loop; `value` is the current depth, `extra` the
    /// peak depth since the link was created.
    SendQueue,
    /// Transport loss/pressure counters for one peer (cumulative);
    /// `value` is frames dropped to queue overflow, `extra` the number
    /// of times the kernel socket pushed back mid-flush.
    QueueDrop,
    /// Per-reactor transport sample from a sharded live server
    /// (`vl serve --reactors N`); `shard` is set, `value` is the
    /// shard's cumulative inbound frame count, `extra` its live
    /// connection count at sample time.
    ShardSample,
}

impl EventKind {
    /// All kinds, in declaration order.
    pub const ALL: [EventKind; 21] = [
        EventKind::Message,
        EventKind::LeaseGranted,
        EventKind::LeaseRenewed,
        EventKind::LeaseExpired,
        EventKind::VolumeLeaseGranted,
        EventKind::InvalidationSent,
        EventKind::InvalidationAcked,
        EventKind::InvalidationQueued,
        EventKind::InvalidationDiscarded,
        EventKind::InvalidationBatch,
        EventKind::ClientDemoted,
        EventKind::Reconnected,
        EventKind::WriteClassified,
        EventKind::WriteCommitted,
        EventKind::Read,
        EventKind::RenewalRtt,
        EventKind::Degraded,
        EventKind::Recovered,
        EventKind::SendQueue,
        EventKind::QueueDrop,
        EventKind::ShardSample,
    ];

    /// Stable lower-snake identifier used on the wire (JSONL).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Message => "message",
            EventKind::LeaseGranted => "lease_granted",
            EventKind::LeaseRenewed => "lease_renewed",
            EventKind::LeaseExpired => "lease_expired",
            EventKind::VolumeLeaseGranted => "vol_lease_granted",
            EventKind::InvalidationSent => "inval_sent",
            EventKind::InvalidationAcked => "inval_acked",
            EventKind::InvalidationQueued => "inval_queued",
            EventKind::InvalidationDiscarded => "inval_discarded",
            EventKind::InvalidationBatch => "inval_batch",
            EventKind::ClientDemoted => "client_demoted",
            EventKind::Reconnected => "reconnected",
            EventKind::WriteClassified => "write_classified",
            EventKind::WriteCommitted => "write_committed",
            EventKind::Read => "read",
            EventKind::RenewalRtt => "renewal_rtt",
            EventKind::Degraded => "degraded",
            EventKind::Recovered => "recovered",
            EventKind::SendQueue => "send_queue",
            EventKind::QueueDrop => "queue_drop",
            EventKind::ShardSample => "shard_sample",
        }
    }

    /// Inverse of [`name`](EventKind::name).
    pub fn from_name(name: &str) -> Option<EventKind> {
        EventKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// One structured protocol event. `Copy` and allocation-free so the
/// emitting hot paths never touch the heap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// When it happened — virtual time in simulation, milliseconds
    /// since process start on the live path.
    pub at: Timestamp,
    /// What happened.
    pub kind: EventKind,
    /// The server involved.
    pub server: ServerId,
    /// The client involved (servers' own events use `ClientId(0)`).
    pub client: ClientId,
    /// The object involved, if any.
    pub object: Option<ObjectId>,
    /// The volume involved, if any.
    pub volume: Option<VolumeId>,
    /// For [`EventKind::Message`]: which wire message.
    pub msg: Option<MessageKind>,
    /// The reactor shard the event was observed on, when the emitting
    /// transport is sharded (`vl serve --reactors N`). `None` on
    /// unsharded transports and in simulation; summaries must fold
    /// shard-annotated events into the same totals as unannotated
    /// ones — the shard is a *dimension*, never a filter.
    pub shard: Option<u32>,
    /// Primary magnitude; meaning is per-[`EventKind`].
    pub value: u64,
    /// Secondary magnitude; meaning is per-[`EventKind`].
    pub extra: u64,
}

impl Event {
    /// A minimal event: `kind` at `at` involving `server`/`client`,
    /// everything else empty. Build richer events with struct update
    /// syntax: `Event { object: Some(o), ..Event::new(..) }`.
    pub fn new(at: Timestamp, kind: EventKind, server: ServerId, client: ClientId) -> Event {
        Event {
            at,
            kind,
            server,
            client,
            object: None,
            volume: None,
            msg: None,
            shard: None,
            value: 0,
            extra: 0,
        }
    }

    /// Serializes to one JSON object (no trailing newline). Zero-valued
    /// `value`/`extra` and absent optionals are omitted.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(
            s,
            "{{\"at_ms\":{},\"kind\":\"{}\",\"server\":{},\"client\":{}",
            self.at.as_millis(),
            self.kind.name(),
            self.server.raw(),
            self.client.raw()
        );
        if let Some(o) = self.object {
            let _ = write!(s, ",\"object\":{}", o.raw());
        }
        if let Some(v) = self.volume {
            let _ = write!(s, ",\"volume\":{}", v.raw());
        }
        if let Some(m) = self.msg {
            let _ = write!(s, ",\"msg\":\"{m}\"");
        }
        if let Some(sh) = self.shard {
            let _ = write!(s, ",\"shard\":{sh}");
        }
        if self.value != 0 {
            let _ = write!(s, ",\"value\":{}", self.value);
        }
        if self.extra != 0 {
            let _ = write!(s, ",\"extra\":{}", self.extra);
        }
        s.push('}');
        s
    }
}

/// One line of a JSONL trace: an event or a run label.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceLine {
    /// A run label: subsequent events belong to the named run.
    Run(String),
    /// A protocol event.
    Event(Event),
}

/// Parses one JSONL trace line. Returns `None` for blank lines and
/// lines that are not valid trace records.
///
/// This is the exact inverse of [`Event::to_json`] /
/// [`JsonlSink::begin_run`] — it is *not* a general JSON parser, but
/// every field the sinks emit is an integer or a fixed identifier, so
/// a flat key scan suffices.
pub fn parse_line(line: &str) -> Option<TraceLine> {
    let line = line.trim();
    let body = line.strip_prefix('{')?.strip_suffix('}')?;
    if let Some(rest) = body.strip_prefix("\"run\":\"") {
        return Some(TraceLine::Run(rest.strip_suffix('"')?.to_string()));
    }
    let mut at = None;
    let mut kind = None;
    let mut server = None;
    let mut client = None;
    let mut object = None;
    let mut volume = None;
    let mut msg = None;
    let mut shard = None;
    let mut value = 0u64;
    let mut extra = 0u64;
    for field in body.split(',') {
        let (key, val) = field.split_once(':')?;
        let key = key.trim().strip_prefix('"')?.strip_suffix('"')?;
        let val = val.trim();
        match key {
            "at_ms" => at = Some(Timestamp::from_millis(val.parse().ok()?)),
            "kind" => kind = EventKind::from_name(unquote(val)?),
            "server" => server = Some(ServerId(val.parse().ok()?)),
            "client" => client = Some(ClientId(val.parse().ok()?)),
            "object" => object = Some(ObjectId(val.parse().ok()?)),
            "volume" => volume = Some(VolumeId(val.parse().ok()?)),
            "msg" => msg = MessageKind::from_name(unquote(val)?),
            "shard" => shard = Some(val.parse().ok()?),
            "value" => value = val.parse().ok()?,
            "extra" => extra = val.parse().ok()?,
            _ => return None,
        }
    }
    Some(TraceLine::Event(Event {
        at: at?,
        kind: kind?,
        server: server?,
        client: client?,
        object,
        volume,
        msg,
        shard,
        value,
        extra,
    }))
}

fn unquote(s: &str) -> Option<&str> {
    s.strip_prefix('"')?.strip_suffix('"')
}

/// Receives protocol events. Implementations must be cheap: the sim
/// hot path calls [`record`](TraceSink::record) once per message.
pub trait TraceSink: Send {
    /// Accepts one event.
    fn record(&mut self, event: &Event);
    /// Marks the start of a named run (algorithm + parameters); events
    /// recorded afterwards belong to it. Default: ignored.
    fn begin_run(&mut self, _label: &str) {}
    /// Flushes buffered output. Default: no-op.
    fn flush(&mut self) {}
}

/// Discards every event — tracing disabled.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _event: &Event) {}
}

/// Keeps the most recent `capacity` events in memory.
#[derive(Debug)]
pub struct RingSink {
    buf: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

impl RingSink {
    /// A ring holding at most `capacity` events (≥ 1).
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            buf: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// How many events were evicted to respect the capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Removes and returns all retained events, oldest first.
    pub fn drain(&mut self) -> Vec<Event> {
        self.buf.drain(..).collect()
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, event: &Event) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(*event);
    }
}

/// Streams events as JSON lines to any writer — the `--trace-out`
/// format, read back by [`parse_line`] and `vl report`.
pub struct JsonlSink<W: Write + Send> {
    out: io::BufWriter<W>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps `out` in a buffered JSONL encoder.
    pub fn new(out: W) -> JsonlSink<W> {
        JsonlSink {
            out: io::BufWriter::new(out),
        }
    }

    /// Consumes the sink, flushing and returning the writer.
    pub fn into_inner(self) -> io::Result<W> {
        self.out.into_inner().map_err(|e| e.into_error())
    }
}

impl<W: Write + Send> std::fmt::Debug for JsonlSink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JsonlSink")
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn record(&mut self, event: &Event) {
        let _ = self.out.write_all(event.to_json().as_bytes());
        let _ = self.out.write_all(b"\n");
    }

    fn begin_run(&mut self, label: &str) {
        // Labels are workspace-generated (algorithm names); escape the
        // two characters that could break the line format anyway.
        let safe: String = label
            .chars()
            .map(|c| if c == '"' || c == '\n' { '\'' } else { c })
            .collect();
        let _ = writeln!(self.out, "{{\"run\":\"{safe}\"}}");
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Event {
        Event {
            at: Timestamp::from_millis(1500),
            kind: EventKind::Message,
            server: ServerId(2),
            client: ClientId(7),
            object: Some(ObjectId(40)),
            volume: Some(VolumeId(3)),
            msg: Some(MessageKind::Invalidate),
            shard: None,
            value: 50,
            extra: 0,
        }
    }

    #[test]
    fn json_roundtrip_full() {
        let e = sample();
        assert_eq!(parse_line(&e.to_json()), Some(TraceLine::Event(e)));
    }

    #[test]
    fn json_roundtrip_shard_dimension() {
        let e = Event {
            shard: Some(3),
            value: 42,
            ..Event::new(
                Timestamp::from_millis(9),
                EventKind::ShardSample,
                ServerId(1),
                ClientId(0),
            )
        };
        let json = e.to_json();
        assert!(json.contains("\"shard\":3"), "shard serialized: {json}");
        assert_eq!(parse_line(&json), Some(TraceLine::Event(e)));
        // Unannotated events stay byte-identical to the pre-shard
        // format: no "shard" key at all.
        let plain = Event::new(Timestamp::ZERO, EventKind::Read, ServerId(0), ClientId(0));
        assert!(!plain.to_json().contains("shard"));
    }

    #[test]
    fn json_roundtrip_minimal_and_all_kinds() {
        for kind in EventKind::ALL {
            let e = Event::new(Timestamp::ZERO, kind, ServerId(0), ClientId(0));
            assert_eq!(parse_line(&e.to_json()), Some(TraceLine::Event(e)));
        }
    }

    #[test]
    fn run_label_roundtrip() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.begin_run("Delay(tv=10s, t=100000s, d=1h)");
        sink.record(&sample());
        let bytes = sink.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let mut lines = text.lines();
        assert_eq!(
            parse_line(lines.next().unwrap()),
            Some(TraceLine::Run("Delay(tv=10s, t=100000s, d=1h)".into()))
        );
        assert_eq!(
            parse_line(lines.next().unwrap()),
            Some(TraceLine::Event(sample()))
        );
    }

    #[test]
    fn garbage_is_none() {
        assert_eq!(parse_line(""), None);
        assert_eq!(parse_line("not json"), None);
        assert_eq!(parse_line("{\"kind\":\"no_such_kind\",\"at_ms\":0}"), None);
    }

    #[test]
    fn ring_keeps_tail() {
        let mut ring = RingSink::new(2);
        for i in 0..5u64 {
            let mut e = Event::new(
                Timestamp::from_millis(i),
                EventKind::Read,
                ServerId(0),
                ClientId(0),
            );
            e.value = i;
            ring.record(&e);
        }
        assert_eq!(ring.dropped(), 3);
        let vals: Vec<u64> = ring.events().map(|e| e.value).collect();
        assert_eq!(vals, vec![3, 4]);
    }
}
