//! Per-kind message counters and staleness accounting.

use std::fmt;

/// Every one-way message type exchanged by the protocols in this workspace.
///
/// The first group is the request/response traffic of Figures 3–4; the
/// last entries cover client polling and plain data fetches used by the
/// baseline algorithms.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)] // variants mirror the paper's message names
pub enum MessageKind {
    ObjLeaseRequest,
    ObjLeaseGrant,
    VolLeaseRequest,
    VolLeaseGrant,
    Invalidate,
    AckInvalidate,
    MustRenewAll,
    RenewObjLeases,
    BatchedInvalRenew,
    PollRequest,
    PollReply,
    DataFetch,
    DataReply,
    WrongShard,
}

impl MessageKind {
    /// All kinds, in declaration order (for iteration in reports).
    pub const ALL: [MessageKind; 14] = [
        MessageKind::ObjLeaseRequest,
        MessageKind::ObjLeaseGrant,
        MessageKind::VolLeaseRequest,
        MessageKind::VolLeaseGrant,
        MessageKind::Invalidate,
        MessageKind::AckInvalidate,
        MessageKind::MustRenewAll,
        MessageKind::RenewObjLeases,
        MessageKind::BatchedInvalRenew,
        MessageKind::PollRequest,
        MessageKind::PollReply,
        MessageKind::DataFetch,
        MessageKind::DataReply,
        MessageKind::WrongShard,
    ];

    fn index(self) -> usize {
        self as usize
    }

    /// The stable display name (also used in JSONL traces).
    pub fn name(self) -> &'static str {
        match self {
            MessageKind::ObjLeaseRequest => "REQ_OBJ_LEASE",
            MessageKind::ObjLeaseGrant => "OBJ_LEASE",
            MessageKind::VolLeaseRequest => "REQ_VOL_LEASE",
            MessageKind::VolLeaseGrant => "VOL_LEASE",
            MessageKind::Invalidate => "INVALIDATE",
            MessageKind::AckInvalidate => "ACK_INVALIDATE",
            MessageKind::MustRenewAll => "MUST_RENEW_ALL",
            MessageKind::RenewObjLeases => "RENEW_OBJ_LEASES",
            MessageKind::BatchedInvalRenew => "INVALIDATE+RENEW",
            MessageKind::PollRequest => "POLL_REQ",
            MessageKind::PollReply => "POLL_REPLY",
            MessageKind::DataFetch => "GET",
            MessageKind::DataReply => "DATA",
            MessageKind::WrongShard => "WRONG_SHARD",
        }
    }

    /// Inverse of [`name`](MessageKind::name).
    pub fn from_name(name: &str) -> Option<MessageKind> {
        MessageKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl fmt::Display for MessageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Counts and byte totals per [`MessageKind`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MessageCounters {
    counts: [u64; MessageKind::ALL.len()],
    bytes: [u64; MessageKind::ALL.len()],
}

impl MessageCounters {
    /// Creates zeroed counters.
    pub fn new() -> MessageCounters {
        MessageCounters::default()
    }

    /// Records one message of `kind` carrying `bytes`.
    pub fn record(&mut self, kind: MessageKind, bytes: u64) {
        self.counts[kind.index()] += 1;
        self.bytes[kind.index()] += bytes;
    }

    /// Number of messages of `kind`.
    pub fn count(&self, kind: MessageKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Bytes carried by messages of `kind`.
    pub fn bytes(&self, kind: MessageKind) -> u64 {
        self.bytes[kind.index()]
    }

    /// Total messages of all kinds.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total bytes of all kinds.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Iterates over `(kind, count, bytes)` triples with non-zero counts.
    pub fn iter(&self) -> impl Iterator<Item = (MessageKind, u64, u64)> + '_ {
        MessageKind::ALL
            .iter()
            .map(|&k| (k, self.count(k), self.bytes(k)))
            .filter(|&(_, c, _)| c > 0)
    }
}

/// Read / stale-read accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StalenessCounters {
    reads: u64,
    stale: u64,
}

impl StalenessCounters {
    /// Creates zeroed counters.
    pub fn new() -> StalenessCounters {
        StalenessCounters::default()
    }

    /// Records one read; `stale` marks whether the returned data was
    /// outdated at read time.
    pub fn record_read(&mut self, stale: bool) {
        self.reads += 1;
        if stale {
            self.stale += 1;
        }
    }

    /// Total reads.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Reads that returned stale data.
    pub fn stale_reads(&self) -> u64 {
        self.stale
    }

    /// Fraction of reads that were stale (0.0 when no reads occurred).
    pub fn stale_fraction(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.stale as f64 / self.reads as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut c = MessageCounters::new();
        c.record(MessageKind::Invalidate, 50);
        c.record(MessageKind::Invalidate, 50);
        c.record(MessageKind::DataReply, 10_000);
        assert_eq!(c.count(MessageKind::Invalidate), 2);
        assert_eq!(c.bytes(MessageKind::DataReply), 10_000);
        assert_eq!(c.total(), 3);
        assert_eq!(c.total_bytes(), 10_100);
    }

    #[test]
    fn iter_skips_zero_kinds() {
        let mut c = MessageCounters::new();
        c.record(MessageKind::PollRequest, 50);
        let v: Vec<_> = c.iter().collect();
        assert_eq!(v, vec![(MessageKind::PollRequest, 1, 50)]);
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(MessageKind::MustRenewAll.to_string(), "MUST_RENEW_ALL");
        assert_eq!(MessageKind::ObjLeaseRequest.to_string(), "REQ_OBJ_LEASE");
    }

    #[test]
    fn staleness_zero_reads_is_zero_fraction() {
        assert_eq!(StalenessCounters::new().stale_fraction(), 0.0);
    }

    #[test]
    fn all_kinds_have_distinct_indices() {
        let mut c = MessageCounters::new();
        for k in MessageKind::ALL {
            c.record(k, 1);
        }
        for k in MessageKind::ALL {
            assert_eq!(c.count(k), 1, "{k}");
        }
        assert_eq!(c.total(), MessageKind::ALL.len() as u64);
    }
}
