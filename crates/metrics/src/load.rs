//! Per-second server load tracking for the burst-load figures.

use vl_types::{ServerId, Timestamp};

/// Records, for an explicitly tracked set of servers, how many messages
/// each sent or received during every 1-second period.
///
/// Tracking is opt-in because a full-scale trace touches millions of
/// server-seconds; Figures 8–9 only need the single busiest server, which
/// the harness discovers with a first (untracked) pass and then re-runs —
/// simulations are deterministic, so the two passes see identical traffic.
///
/// Counts are kept densely, one slot per elapsed second per tracked
/// server: the key space is bounded by the trace span (a few hundred
/// thousand seconds for the multi-day paper traces), so a flat `Vec`
/// beats a per-second tree on the message hot path.
#[derive(Clone, Debug, Default)]
pub struct LoadTracker {
    /// Tracked servers, sorted ascending; `counts` is parallel to it.
    tracked: Vec<ServerId>,
    /// Per tracked server: message count per 1-second slot, grown on
    /// demand to the highest touched second.
    counts: Vec<Vec<u64>>,
}

impl LoadTracker {
    /// Creates a tracker for the given servers.
    pub fn tracking(servers: impl IntoIterator<Item = ServerId>) -> LoadTracker {
        let mut tracked: Vec<ServerId> = servers.into_iter().collect();
        tracked.sort_unstable();
        tracked.dedup();
        let counts = vec![Vec::new(); tracked.len()];
        LoadTracker { tracked, counts }
    }

    fn index_of(&self, server: ServerId) -> Option<usize> {
        self.tracked.binary_search(&server).ok()
    }

    /// Returns `true` if `server`'s load is being recorded.
    pub fn is_tracked(&self, server: ServerId) -> bool {
        self.index_of(server).is_some()
    }

    /// Records one message at `server` at time `now`.
    pub fn record(&mut self, server: ServerId, now: Timestamp) {
        self.record_n(server, now, 1);
    }

    /// Records `n` messages at `server` at time `now` in one pass.
    pub fn record_n(&mut self, server: ServerId, now: Timestamp, n: u64) {
        if let Some(i) = self.index_of(server) {
            let sec = now.as_secs() as usize;
            let slots = &mut self.counts[i];
            if slots.len() <= sec {
                slots.resize(sec + 1, 0);
            }
            slots[sec] += n;
        }
    }

    /// Finalizes the histogram for `server`, or `None` if untracked.
    pub fn histogram(&self, server: ServerId) -> Option<LoadHistogram> {
        let i = self.index_of(server)?;
        // Idle seconds are not part of the histogram (they were never
        // stored in the sparse representation either).
        let mut sorted: Vec<u64> = self.counts[i].iter().copied().filter(|&c| c > 0).collect();
        sorted.sort_unstable();
        Some(LoadHistogram { sorted })
    }
}

/// The cumulative distribution of per-second message load at one server:
/// answers "in how many 1-second periods was the load at least *x*
/// messages?" — the y-axis of Figures 8–9.
///
/// # Examples
///
/// ```
/// use vl_metrics::{LoadTracker};
/// use vl_types::{ServerId, Timestamp};
///
/// let mut t = LoadTracker::tracking([ServerId(0)]);
/// for _ in 0..3 {
///     t.record(ServerId(0), Timestamp::from_secs(1));
/// }
/// t.record(ServerId(0), Timestamp::from_secs(2));
/// let h = t.histogram(ServerId(0)).unwrap();
/// assert_eq!(h.periods_with_load_at_least(1), 2);
/// assert_eq!(h.periods_with_load_at_least(2), 1);
/// assert_eq!(h.periods_with_load_at_least(4), 0);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LoadHistogram {
    /// Per-second counts for every busy second, ascending.
    sorted: Vec<u64>,
}

impl LoadHistogram {
    /// Number of 1-second periods whose load was ≥ `x` messages.
    ///
    /// Periods with zero messages are not stored, so `x = 0` returns the
    /// number of *busy* periods.
    pub fn periods_with_load_at_least(&self, x: u64) -> u64 {
        let idx = self.sorted.partition_point(|&c| c < x);
        (self.sorted.len() - idx) as u64
    }

    /// The peak 1-second load.
    pub fn peak(&self) -> u64 {
        self.sorted.last().copied().unwrap_or(0)
    }

    /// Number of busy (non-zero) periods.
    pub fn busy_periods(&self) -> u64 {
        self.sorted.len() as u64
    }

    /// The full cumulative curve as `(load, periods_with_at_least)` pairs
    /// at each distinct load level, ascending — one row per plotted point.
    pub fn cumulative_curve(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let n = self.sorted.len();
        let mut i = 0;
        while i < n {
            let load = self.sorted[i];
            out.push((load, (n - i) as u64));
            while i < n && self.sorted[i] == load {
                i += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untracked_servers_record_nothing() {
        let mut t = LoadTracker::tracking([ServerId(1)]);
        t.record(ServerId(2), Timestamp::from_secs(0));
        assert!(t.histogram(ServerId(2)).is_none());
        assert!(!t.is_tracked(ServerId(2)));
        assert!(t.is_tracked(ServerId(1)));
    }

    #[test]
    fn buckets_are_one_second() {
        let mut t = LoadTracker::tracking([ServerId(0)]);
        // 999 ms and 1000 ms land in different buckets.
        t.record(ServerId(0), Timestamp::from_millis(999));
        t.record(ServerId(0), Timestamp::from_millis(1000));
        let h = t.histogram(ServerId(0)).unwrap();
        assert_eq!(h.busy_periods(), 2);
        assert_eq!(h.peak(), 1);
    }

    #[test]
    fn cumulative_curve_is_monotone_nonincreasing() {
        let mut t = LoadTracker::tracking([ServerId(0)]);
        let loads = [3u64, 1, 4, 1, 5, 9, 2, 6];
        for (sec, &n) in loads.iter().enumerate() {
            for _ in 0..n {
                t.record(ServerId(0), Timestamp::from_secs(sec as u64));
            }
        }
        let h = t.histogram(ServerId(0)).unwrap();
        let curve = h.cumulative_curve();
        assert!(curve.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 > w[1].1));
        assert_eq!(h.periods_with_load_at_least(1), 8);
        assert_eq!(h.periods_with_load_at_least(9), 1);
        assert_eq!(h.peak(), 9);
    }

    #[test]
    fn empty_histogram() {
        let t = LoadTracker::tracking([ServerId(0)]);
        let h = t.histogram(ServerId(0)).unwrap();
        assert_eq!(h.peak(), 0);
        assert_eq!(h.periods_with_load_at_least(0), 0);
        assert!(h.cumulative_curve().is_empty());
    }
}
