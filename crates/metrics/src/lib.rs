//! Measurement infrastructure for consistency experiments.
//!
//! The paper evaluates algorithms along four axes (§5):
//!
//! 1. **network load** — messages (and bytes) exchanged between clients and
//!    servers (Figure 5);
//! 2. **server state** — average bytes of consistency metadata at a server,
//!    charged at 16 bytes per lease / callback / queued-message record
//!    (Figures 6–7);
//! 3. **bursts of load** — a cumulative histogram of 1-second periods in
//!    which a server sent or received at least *x* messages (Figures 8–9);
//! 4. **staleness** — the fraction of reads that returned stale data
//!    (only non-zero for the polling algorithms).
//!
//! [`Metrics`] is the single sink the protocol implementations write into.
//! State is accounted *exactly* (not sampled): every record contributes
//! `bytes × lifetime` to a per-server integral, so the reported average is
//! the true time-weighted mean.
//!
//! # Observability
//!
//! Beyond the aggregate counters, two modules support per-event tracing
//! and latency distributions:
//!
//! * [`trace`] — typed protocol [`Event`]s and the [`TraceSink`] trait
//!   ([`NullSink`], [`RingSink`], [`JsonlSink`]). A sink can be attached
//!   to a [`Metrics`] instance ([`Metrics::set_sink`]) or driven
//!   directly by the live drivers; JSONL files are what `vl report`
//!   summarizes.
//! * [`hist`] — HDR-style log-bucketed [`Histogram`]s (≤ 1/16 relative
//!   quantile error, exact min/max/count/sum) for read latency, renewal
//!   round-trips, write delays, and invalidation-batch sizes. Merging is
//!   lossless, so per-shard histograms from a parallel sweep combine
//!   into exactly the single-threaded result.
//!
//! # Layering
//!
//! Per DESIGN.md §7 this crate stays pure: recording is a method call,
//! sinks are passed in by the caller, and the only I/O ([`JsonlSink`])
//! is behind a `Write` the caller owns — so the same instrumentation
//! serves the simulator, the fault harness, and the live threads.
//!
//! # Examples
//!
//! ```
//! use vl_metrics::{Metrics, MessageKind};
//! use vl_types::{ClientId, ServerId, Timestamp};
//!
//! let mut m = Metrics::new();
//! m.count_msg(MessageKind::ObjLeaseRequest, ServerId(0), ClientId(3), 50, Timestamp::ZERO);
//! assert_eq!(m.total_messages(), 1);
//! assert_eq!(m.server_messages(ServerId(0)), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod counters;
pub mod hist;
mod load;
mod state;
pub mod trace;

pub use counters::{MessageCounters, MessageKind, StalenessCounters};
pub use hist::Histogram;
pub use load::{LoadHistogram, LoadTracker};
pub use state::StateIntegral;
pub use trace::{Event, EventKind, JsonlSink, NullSink, RingSink, TraceSink};

use vl_types::{ClientId, Duration, ServerId, Timestamp};

/// Nominal size in bytes of a control message (headers + ids); data
/// replies add the object payload on top.
pub const CONTROL_MSG_BYTES: u64 = 50;

/// The metrics sink for one simulation run.
#[derive(Default)]
pub struct Metrics {
    msgs: MessageCounters,
    staleness: StalenessCounters,
    per_server_msgs: Vec<u64>,
    per_server_bytes: Vec<u64>,
    per_client_msgs: Vec<u64>,
    state: StateIntegral,
    load: LoadTracker,
    write_delay_total: Duration,
    write_delay_max: Duration,
    writes_delayed: u64,
    obs: Observability,
    sink: Option<Box<dyn TraceSink>>,
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Metrics")
            .field("msgs", &self.msgs)
            .field("staleness", &self.staleness)
            .field("writes_delayed", &self.writes_delayed)
            .field("tracing", &self.sink.is_some())
            .finish_non_exhaustive()
    }
}

/// The four observability histograms of a run, kept together so sweep
/// shards can be combined with one lossless [`Observability::merge`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Observability {
    /// Write delay in milliseconds (0 for undelayed writes).
    pub write_delay_ms: Histogram,
    /// Client-observed read latency in milliseconds (live path only).
    pub read_latency_ms: Histogram,
    /// Lease-renewal round-trip time in milliseconds (live path only).
    pub renewal_rtt_ms: Histogram,
    /// Delivered invalidation-batch sizes (delayed invalidations).
    pub inval_batch: Histogram,
}

impl Observability {
    /// Merges another shard's histograms into this one; lossless, see
    /// [`Histogram::merge`].
    pub fn merge(&mut self, other: &Observability) {
        self.write_delay_ms.merge(&other.write_delay_ms);
        self.read_latency_ms.merge(&other.read_latency_ms);
        self.renewal_rtt_ms.merge(&other.renewal_rtt_ms);
        self.inval_batch.merge(&other.inval_batch);
    }
}

impl Metrics {
    /// Creates an empty sink tracking no servers' per-second load.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Creates a sink that additionally records per-second message counts
    /// for `servers` (Figures 8–9 need this only for the busiest server).
    pub fn with_load_tracking(servers: impl IntoIterator<Item = ServerId>) -> Metrics {
        Metrics {
            load: LoadTracker::tracking(servers),
            ..Metrics::default()
        }
    }

    /// Records one one-way message of `kind`, `bytes` long, between
    /// `server` and `client` at time `now`. Direction does not matter for
    /// the paper's metrics: both ends count it, and the server's
    /// per-second load counts messages "sent or received".
    pub fn count_msg(
        &mut self,
        kind: MessageKind,
        server: ServerId,
        client: ClientId,
        bytes: u64,
        now: Timestamp,
    ) {
        self.msgs.record(kind, bytes);
        bump(&mut self.per_server_msgs, server.raw() as usize, 1);
        bump(&mut self.per_server_bytes, server.raw() as usize, bytes);
        bump(&mut self.per_client_msgs, client.raw() as usize, 1);
        self.load.record(server, now);
        if let Some(sink) = &mut self.sink {
            sink.record(&Event {
                msg: Some(kind),
                value: bytes,
                ..Event::new(now, EventKind::Message, server, client)
            });
        }
    }

    /// Records a request/reply pair between the same `server` and
    /// `client` at `now` in one pass over the per-server and per-client
    /// tallies. Observably identical to two [`count_msg`] calls — this
    /// exists because every lease renewal and fetch is such a pair, and
    /// the tally pass is a measurable slice of the simulator hot loop.
    ///
    /// [`count_msg`]: Metrics::count_msg
    #[allow(clippy::too_many_arguments)]
    pub fn count_msg_pair(
        &mut self,
        kind_a: MessageKind,
        bytes_a: u64,
        kind_b: MessageKind,
        bytes_b: u64,
        server: ServerId,
        client: ClientId,
        now: Timestamp,
    ) {
        self.msgs.record(kind_a, bytes_a);
        self.msgs.record(kind_b, bytes_b);
        bump(&mut self.per_server_msgs, server.raw() as usize, 2);
        bump(
            &mut self.per_server_bytes,
            server.raw() as usize,
            bytes_a + bytes_b,
        );
        bump(&mut self.per_client_msgs, client.raw() as usize, 2);
        self.load.record_n(server, now, 2);
        if let Some(sink) = &mut self.sink {
            for (kind, bytes) in [(kind_a, bytes_a), (kind_b, bytes_b)] {
                sink.record(&Event {
                    msg: Some(kind),
                    value: bytes,
                    ..Event::new(now, EventKind::Message, server, client)
                });
            }
        }
    }

    /// Records a client read: `stale` is whether the returned copy was
    /// outdated at read time.
    pub fn record_read(&mut self, stale: bool) {
        self.staleness.record_read(stale);
    }

    /// Adds `bytes` of server state held for `lifetime` at `server` —
    /// called once per record with its exact lifetime, making the state
    /// integral exact.
    pub fn state_held(&mut self, server: ServerId, bytes: u64, lifetime: Duration) {
        self.state.add(server, bytes, lifetime);
    }

    /// Records that a server write was delayed by `delay` waiting for
    /// acknowledgments or lease expiry. Every write (delayed or not)
    /// lands in the write-delay histogram; the mean/max counters keep
    /// their historical "delayed writes only" semantics.
    pub fn record_write_delay(&mut self, delay: Duration) {
        self.obs.write_delay_ms.record(delay.as_millis());
        if !delay.is_zero() {
            self.writes_delayed += 1;
            self.write_delay_total += delay;
            self.write_delay_max = self.write_delay_max.max(delay);
        }
    }

    /// Records one client-observed read latency (live path).
    pub fn record_read_latency(&mut self, millis: u64) {
        self.obs.read_latency_ms.record(millis);
    }

    /// Records one lease-renewal round-trip time (live path).
    pub fn record_renewal_rtt(&mut self, millis: u64) {
        self.obs.renewal_rtt_ms.record(millis);
    }

    /// Records the size of one delivered invalidation batch.
    pub fn record_inval_batch(&mut self, size: u64) {
        self.obs.inval_batch.record(size);
    }

    /// The run's observability histograms.
    pub fn observability(&self) -> &Observability {
        &self.obs
    }

    /// Attaches a trace sink; subsequent messages and protocol events
    /// are recorded into it.
    pub fn set_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// Detaches and returns the trace sink, flushing it first.
    pub fn take_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        let mut sink = self.sink.take();
        if let Some(s) = &mut sink {
            s.flush();
        }
        sink
    }

    /// Whether a trace sink is attached.
    pub fn tracing(&self) -> bool {
        self.sink.is_some()
    }

    /// Forwards a run label to the sink, if any.
    pub fn begin_run(&mut self, label: &str) {
        if let Some(sink) = &mut self.sink {
            sink.begin_run(label);
        }
    }

    /// Records a typed protocol event into the sink, if any. One
    /// untaken branch when tracing is off — callers on hot paths may
    /// still want to guard event construction with [`tracing`].
    ///
    /// [`tracing`]: Metrics::tracing
    pub fn emit(&mut self, event: Event) {
        if let Some(sink) = &mut self.sink {
            sink.record(&event);
        }
    }

    /// Total one-way messages recorded.
    pub fn total_messages(&self) -> u64 {
        self.msgs.total()
    }

    /// Total bytes across all messages.
    pub fn total_bytes(&self) -> u64 {
        self.msgs.total_bytes()
    }

    /// Per-kind message counters.
    pub fn message_counters(&self) -> &MessageCounters {
        &self.msgs
    }

    /// Staleness counters.
    pub fn staleness(&self) -> &StalenessCounters {
        &self.staleness
    }

    /// Messages sent or received by `server`.
    pub fn server_messages(&self, server: ServerId) -> u64 {
        self.per_server_msgs
            .get(server.raw() as usize)
            .copied()
            .unwrap_or(0)
    }

    /// Bytes sent or received by `server`.
    pub fn server_bytes(&self, server: ServerId) -> u64 {
        self.per_server_bytes
            .get(server.raw() as usize)
            .copied()
            .unwrap_or(0)
    }

    /// Messages sent or received by `client`.
    pub fn client_messages(&self, client: ClientId) -> u64 {
        self.per_client_msgs
            .get(client.raw() as usize)
            .copied()
            .unwrap_or(0)
    }

    /// Servers ranked by message traffic, busiest first.
    pub fn busiest_servers(&self) -> Vec<(ServerId, u64)> {
        let mut v: Vec<(ServerId, u64)> = self
            .per_server_msgs
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (ServerId(i as u32), n))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Average consistency-state bytes at `server` over a run of length
    /// `span` (the time-weighted mean).
    pub fn avg_state_bytes(&self, server: ServerId, span: Duration) -> f64 {
        self.state.average(server, span)
    }

    /// Exact state integral, for tests.
    pub fn state_integral(&self) -> &StateIntegral {
        &self.state
    }

    /// Finalized per-second load histogram for a tracked server, or `None`
    /// if the server was not tracked.
    pub fn load_histogram(&self, server: ServerId) -> Option<LoadHistogram> {
        self.load.histogram(server)
    }

    /// Mean write delay over delayed writes, if any were delayed.
    pub fn mean_write_delay(&self) -> Option<Duration> {
        (self.writes_delayed > 0).then(|| {
            Duration::from_millis(self.write_delay_total.as_millis() / self.writes_delayed)
        })
    }

    /// Largest single write delay observed.
    pub fn max_write_delay(&self) -> Duration {
        self.write_delay_max
    }

    /// Condensed run summary for reports and CSV output.
    pub fn summary(&self, span: Duration) -> Summary {
        Summary {
            messages: self.total_messages(),
            bytes: self.total_bytes(),
            reads: self.staleness.reads(),
            stale_reads: self.staleness.stale_reads(),
            stale_fraction: self.staleness.stale_fraction(),
            max_write_delay_secs: self.write_delay_max.as_secs_f64(),
            span_secs: span.as_secs_f64(),
        }
    }
}

/// A condensed, serializable run summary.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Total one-way messages.
    pub messages: u64,
    /// Total bytes.
    pub bytes: u64,
    /// Total client reads.
    pub reads: u64,
    /// Reads that returned stale data.
    pub stale_reads: u64,
    /// `stale_reads / reads`.
    pub stale_fraction: f64,
    /// Largest write delay in seconds.
    pub max_write_delay_secs: f64,
    /// Length of the simulated span in seconds.
    pub span_secs: f64,
}

fn bump(v: &mut Vec<u64>, idx: usize, by: u64) {
    if v.len() <= idx {
        v.resize(idx + 1, 0);
    }
    v[idx] += by;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_roll_up_per_party() {
        let mut m = Metrics::new();
        m.count_msg(
            MessageKind::Invalidate,
            ServerId(2),
            ClientId(5),
            50,
            Timestamp::ZERO,
        );
        m.count_msg(
            MessageKind::AckInvalidate,
            ServerId(2),
            ClientId(5),
            50,
            Timestamp::ZERO,
        );
        assert_eq!(m.total_messages(), 2);
        assert_eq!(m.total_bytes(), 100);
        assert_eq!(m.server_messages(ServerId(2)), 2);
        assert_eq!(m.server_messages(ServerId(0)), 0);
        assert_eq!(m.client_messages(ClientId(5)), 2);
        assert_eq!(m.busiest_servers(), vec![(ServerId(2), 2)]);
    }

    #[test]
    fn staleness_fraction() {
        let mut m = Metrics::new();
        m.record_read(false);
        m.record_read(true);
        m.record_read(false);
        m.record_read(false);
        assert_eq!(m.staleness().reads(), 4);
        assert_eq!(m.staleness().stale_reads(), 1);
        assert!((m.staleness().stale_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn write_delays_track_mean_and_max() {
        let mut m = Metrics::new();
        m.record_write_delay(Duration::ZERO); // not counted
        m.record_write_delay(Duration::from_secs(10));
        m.record_write_delay(Duration::from_secs(20));
        assert_eq!(m.mean_write_delay(), Some(Duration::from_secs(15)));
        assert_eq!(m.max_write_delay(), Duration::from_secs(20));
    }

    #[test]
    fn summary_serializes_essentials() {
        let mut m = Metrics::new();
        m.record_read(true);
        let s = m.summary(Duration::from_secs(100));
        assert_eq!(s.reads, 1);
        assert_eq!(s.stale_reads, 1);
        assert_eq!(s.span_secs, 100.0);
    }
}
