//! Measurement infrastructure for consistency experiments.
//!
//! The paper evaluates algorithms along four axes (§5):
//!
//! 1. **network load** — messages (and bytes) exchanged between clients and
//!    servers (Figure 5);
//! 2. **server state** — average bytes of consistency metadata at a server,
//!    charged at 16 bytes per lease / callback / queued-message record
//!    (Figures 6–7);
//! 3. **bursts of load** — a cumulative histogram of 1-second periods in
//!    which a server sent or received at least *x* messages (Figures 8–9);
//! 4. **staleness** — the fraction of reads that returned stale data
//!    (only non-zero for the polling algorithms).
//!
//! [`Metrics`] is the single sink the protocol implementations write into.
//! State is accounted *exactly* (not sampled): every record contributes
//! `bytes × lifetime` to a per-server integral, so the reported average is
//! the true time-weighted mean.
//!
//! # Examples
//!
//! ```
//! use vl_metrics::{Metrics, MessageKind};
//! use vl_types::{ClientId, ServerId, Timestamp};
//!
//! let mut m = Metrics::new();
//! m.count_msg(MessageKind::ObjLeaseRequest, ServerId(0), ClientId(3), 50, Timestamp::ZERO);
//! assert_eq!(m.total_messages(), 1);
//! assert_eq!(m.server_messages(ServerId(0)), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod counters;
mod load;
mod state;

pub use counters::{MessageCounters, MessageKind, StalenessCounters};
pub use load::{LoadHistogram, LoadTracker};
pub use state::StateIntegral;

use vl_types::{ClientId, Duration, ServerId, Timestamp};

/// Nominal size in bytes of a control message (headers + ids); data
/// replies add the object payload on top.
pub const CONTROL_MSG_BYTES: u64 = 50;

/// The metrics sink for one simulation run.
#[derive(Debug, Default)]
pub struct Metrics {
    msgs: MessageCounters,
    staleness: StalenessCounters,
    per_server_msgs: Vec<u64>,
    per_server_bytes: Vec<u64>,
    per_client_msgs: Vec<u64>,
    state: StateIntegral,
    load: LoadTracker,
    write_delay_total: Duration,
    write_delay_max: Duration,
    writes_delayed: u64,
}

impl Metrics {
    /// Creates an empty sink tracking no servers' per-second load.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Creates a sink that additionally records per-second message counts
    /// for `servers` (Figures 8–9 need this only for the busiest server).
    pub fn with_load_tracking(servers: impl IntoIterator<Item = ServerId>) -> Metrics {
        Metrics {
            load: LoadTracker::tracking(servers),
            ..Metrics::default()
        }
    }

    /// Records one one-way message of `kind`, `bytes` long, between
    /// `server` and `client` at time `now`. Direction does not matter for
    /// the paper's metrics: both ends count it, and the server's
    /// per-second load counts messages "sent or received".
    pub fn count_msg(
        &mut self,
        kind: MessageKind,
        server: ServerId,
        client: ClientId,
        bytes: u64,
        now: Timestamp,
    ) {
        self.msgs.record(kind, bytes);
        bump(&mut self.per_server_msgs, server.raw() as usize, 1);
        bump(&mut self.per_server_bytes, server.raw() as usize, bytes);
        bump(&mut self.per_client_msgs, client.raw() as usize, 1);
        self.load.record(server, now);
    }

    /// Records a client read: `stale` is whether the returned copy was
    /// outdated at read time.
    pub fn record_read(&mut self, stale: bool) {
        self.staleness.record_read(stale);
    }

    /// Adds `bytes` of server state held for `lifetime` at `server` —
    /// called once per record with its exact lifetime, making the state
    /// integral exact.
    pub fn state_held(&mut self, server: ServerId, bytes: u64, lifetime: Duration) {
        self.state.add(server, bytes, lifetime);
    }

    /// Records that a server write was delayed by `delay` waiting for
    /// acknowledgments or lease expiry.
    pub fn record_write_delay(&mut self, delay: Duration) {
        if !delay.is_zero() {
            self.writes_delayed += 1;
            self.write_delay_total += delay;
            self.write_delay_max = self.write_delay_max.max(delay);
        }
    }

    /// Total one-way messages recorded.
    pub fn total_messages(&self) -> u64 {
        self.msgs.total()
    }

    /// Total bytes across all messages.
    pub fn total_bytes(&self) -> u64 {
        self.msgs.total_bytes()
    }

    /// Per-kind message counters.
    pub fn message_counters(&self) -> &MessageCounters {
        &self.msgs
    }

    /// Staleness counters.
    pub fn staleness(&self) -> &StalenessCounters {
        &self.staleness
    }

    /// Messages sent or received by `server`.
    pub fn server_messages(&self, server: ServerId) -> u64 {
        self.per_server_msgs
            .get(server.raw() as usize)
            .copied()
            .unwrap_or(0)
    }

    /// Bytes sent or received by `server`.
    pub fn server_bytes(&self, server: ServerId) -> u64 {
        self.per_server_bytes
            .get(server.raw() as usize)
            .copied()
            .unwrap_or(0)
    }

    /// Messages sent or received by `client`.
    pub fn client_messages(&self, client: ClientId) -> u64 {
        self.per_client_msgs
            .get(client.raw() as usize)
            .copied()
            .unwrap_or(0)
    }

    /// Servers ranked by message traffic, busiest first.
    pub fn busiest_servers(&self) -> Vec<(ServerId, u64)> {
        let mut v: Vec<(ServerId, u64)> = self
            .per_server_msgs
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (ServerId(i as u32), n))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Average consistency-state bytes at `server` over a run of length
    /// `span` (the time-weighted mean).
    pub fn avg_state_bytes(&self, server: ServerId, span: Duration) -> f64 {
        self.state.average(server, span)
    }

    /// Exact state integral, for tests.
    pub fn state_integral(&self) -> &StateIntegral {
        &self.state
    }

    /// Finalized per-second load histogram for a tracked server, or `None`
    /// if the server was not tracked.
    pub fn load_histogram(&self, server: ServerId) -> Option<LoadHistogram> {
        self.load.histogram(server)
    }

    /// Mean write delay over delayed writes, if any were delayed.
    pub fn mean_write_delay(&self) -> Option<Duration> {
        (self.writes_delayed > 0).then(|| {
            Duration::from_millis(self.write_delay_total.as_millis() / self.writes_delayed)
        })
    }

    /// Largest single write delay observed.
    pub fn max_write_delay(&self) -> Duration {
        self.write_delay_max
    }

    /// Condensed run summary for reports and CSV output.
    pub fn summary(&self, span: Duration) -> Summary {
        Summary {
            messages: self.total_messages(),
            bytes: self.total_bytes(),
            reads: self.staleness.reads(),
            stale_reads: self.staleness.stale_reads(),
            stale_fraction: self.staleness.stale_fraction(),
            max_write_delay_secs: self.write_delay_max.as_secs_f64(),
            span_secs: span.as_secs_f64(),
        }
    }
}

/// A condensed, serializable run summary.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Total one-way messages.
    pub messages: u64,
    /// Total bytes.
    pub bytes: u64,
    /// Total client reads.
    pub reads: u64,
    /// Reads that returned stale data.
    pub stale_reads: u64,
    /// `stale_reads / reads`.
    pub stale_fraction: f64,
    /// Largest write delay in seconds.
    pub max_write_delay_secs: f64,
    /// Length of the simulated span in seconds.
    pub span_secs: f64,
}

fn bump(v: &mut Vec<u64>, idx: usize, by: u64) {
    if v.len() <= idx {
        v.resize(idx + 1, 0);
    }
    v[idx] += by;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_roll_up_per_party() {
        let mut m = Metrics::new();
        m.count_msg(
            MessageKind::Invalidate,
            ServerId(2),
            ClientId(5),
            50,
            Timestamp::ZERO,
        );
        m.count_msg(
            MessageKind::AckInvalidate,
            ServerId(2),
            ClientId(5),
            50,
            Timestamp::ZERO,
        );
        assert_eq!(m.total_messages(), 2);
        assert_eq!(m.total_bytes(), 100);
        assert_eq!(m.server_messages(ServerId(2)), 2);
        assert_eq!(m.server_messages(ServerId(0)), 0);
        assert_eq!(m.client_messages(ClientId(5)), 2);
        assert_eq!(m.busiest_servers(), vec![(ServerId(2), 2)]);
    }

    #[test]
    fn staleness_fraction() {
        let mut m = Metrics::new();
        m.record_read(false);
        m.record_read(true);
        m.record_read(false);
        m.record_read(false);
        assert_eq!(m.staleness().reads(), 4);
        assert_eq!(m.staleness().stale_reads(), 1);
        assert!((m.staleness().stale_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn write_delays_track_mean_and_max() {
        let mut m = Metrics::new();
        m.record_write_delay(Duration::ZERO); // not counted
        m.record_write_delay(Duration::from_secs(10));
        m.record_write_delay(Duration::from_secs(20));
        assert_eq!(m.mean_write_delay(), Some(Duration::from_secs(15)));
        assert_eq!(m.max_write_delay(), Duration::from_secs(20));
    }

    #[test]
    fn summary_serializes_essentials() {
        let mut m = Metrics::new();
        m.record_read(true);
        let s = m.summary(Duration::from_secs(100));
        assert_eq!(s.reads, 1);
        assert_eq!(s.stale_reads, 1);
        assert_eq!(s.span_secs, 100.0);
    }
}
