//! `vl bench-live` — end-to-end load test of the readiness transport.
//!
//! Spawns a real `vl serve` child process, connects `--clients` live
//! [`CacheClient`]s to it over loopback TCP (a handful of shared
//! [`Reactor`]s multiplex all the sockets), and drives volume-lease
//! renewals for `--duration-s` seconds. A renewal is a read issued
//! while the client's leases have lapsed — the paper's steady-state
//! volume-lease traffic — and its full round trip (request, server
//! machine, response, wakeup) is timed.
//!
//! Two processes are used because the file-descriptor ceiling is per
//! process: 10 000 connections need ~10 000 fds on each side, and both
//! sides together would not fit under one default `RLIMIT_NOFILE`.
//!
//! Results land in a JSON file (default `BENCH_live.json`) next to the
//! simulator's `BENCH_sweep.json`, and a human `renewals/s` line is
//! printed for CI to grep.

use crate::Args;
use std::io::Write as _;
use std::process::{exit, Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use vl_client::{CacheClient, ClientConfig};
use vl_metrics::Histogram;
use vl_net::poll::{PollConfig, Reactor};
use vl_net::NodeId;
use vl_server::WallClock;
use vl_types::{ClientId, ObjectId, ServerId};

struct BenchOpts {
    clients: u32,
    duration: Duration,
    tv_ms: u64,
    object_lease_ms: u64,
    objects: u64,
    workers: usize,
    reactors: usize,
    out: String,
    /// External server to target; `None` spawns a child `vl serve`.
    addr: Option<String>,
}

pub fn run(args: &Args) {
    let opts = BenchOpts {
        clients: args.parsed("--clients", 10_000u32),
        duration: Duration::from_secs(args.parsed("--duration-s", 10u64)),
        tv_ms: args.parsed("--tv-ms", 3_000u64),
        object_lease_ms: args.parsed("--object-lease-ms", 120_000u64),
        objects: args.parsed("--objects", 64u64),
        workers: args.parsed("--workers", 32usize),
        reactors: args.parsed("--reactors", 4usize),
        out: args.value("--out").unwrap_or("BENCH_live.json").to_string(),
        addr: args.value("--addr").map(String::from),
    };

    let (addr, mut child) = match &opts.addr {
        Some(a) => (a.clone(), None),
        None => {
            let (addr, child) = spawn_server(&opts);
            (addr, Some(child))
        }
    };
    let addr: std::net::SocketAddr = addr.parse().unwrap_or_else(|e| {
        eprintln!("bad server address {addr}: {e}");
        exit(2)
    });

    println!(
        "bench-live: {} clients -> {} over {} reactors, {} workers, t_v={} ms, {} s",
        opts.clients,
        addr,
        opts.reactors,
        opts.workers,
        opts.tv_ms,
        opts.duration.as_secs()
    );

    // One reactor per ~2.5k connections; long transport idle deadline
    // so keepalive traffic does not drown the renewal signal.
    let poll_cfg = PollConfig {
        idle_deadline: Some(Duration::from_secs(60)),
        dial_timeout: Duration::from_secs(10),
        hello_timeout: Duration::from_secs(20),
        ..PollConfig::default()
    };
    let reactors: Vec<Reactor> = (0..opts.reactors.max(1))
        .map(|_| Reactor::spawn(poll_cfg.clone()).expect("spawn reactor"))
        .collect();

    // Dial + spawn all clients from a few threads; each client's
    // receive loop parks on a 1 s tick, so idle clients cost no CPU.
    let connect_t0 = Instant::now();
    let dial_threads = 8u32;
    let clients: Vec<CacheClient> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..dial_threads {
            let reactors = &reactors;
            let opts = &opts;
            handles.push(scope.spawn(move || {
                let mut mine = Vec::new();
                let mut id = t;
                while id < opts.clients {
                    let node = reactors[id as usize % reactors.len()].node(NodeId::Client(
                        ClientId(id + 1), // ClientId(0) is reserved for server events
                    ));
                    if let Err(e) = node.dial(addr) {
                        eprintln!("client {id} cannot connect: {e}");
                        exit(1)
                    }
                    let mut cfg = ClientConfig::new(ClientId(id + 1), ServerId(0));
                    cfg.link_tick = Duration::from_secs(1);
                    mine.push((id, CacheClient::spawn(cfg, node, WallClock::new())));
                    id += dial_threads;
                }
                mine
            }));
        }
        let mut all: Vec<(u32, CacheClient)> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_by_key(|(id, _)| *id);
        all.into_iter().map(|(_, c)| c).collect()
    });
    let connect_secs = connect_t0.elapsed().as_secs_f64();
    println!(
        "connected {} clients in {:.1} s ({:.0} dials/s)",
        clients.len(),
        connect_secs,
        clients.len() as f64 / connect_secs.max(1e-9)
    );

    // Warm-up: every client acquires its object + volume lease once, so
    // the measured window sees steady-state renewals, not cold misses.
    let clients = Arc::new(clients);
    let objects = opts.objects.max(1);
    sweep(&clients, opts.workers, |i, c| {
        let _ = c.read(ObjectId(i as u64 % objects));
    });

    // Measured window: workers sweep their shard, timing a renewal
    // round trip whenever a client's leases have lapsed.
    let stop = Arc::new(AtomicBool::new(false));
    let renewals = Arc::new(AtomicU64::new(0));
    let reads = Arc::new(AtomicU64::new(0));
    let failures = Arc::new(AtomicU64::new(0));
    let t0 = Instant::now();
    let mut worker_handles = Vec::new();
    for w in 0..opts.workers.max(1) {
        let clients = Arc::clone(&clients);
        let stop = Arc::clone(&stop);
        let renewals = Arc::clone(&renewals);
        let reads = Arc::clone(&reads);
        let failures = Arc::clone(&failures);
        let workers = opts.workers.max(1);
        worker_handles.push(std::thread::spawn(move || {
            let mut hist = Histogram::new(); // microseconds
            while !stop.load(Ordering::Relaxed) {
                let mut renewed_this_pass = false;
                for i in (w..clients.len()).step_by(workers) {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let c = &clients[i];
                    let obj = ObjectId(i as u64 % objects);
                    reads.fetch_add(1, Ordering::Relaxed);
                    if c.holds_valid_leases(obj) {
                        // Cache hit under valid leases: free, not timed.
                        let _ = c.read_suspect(obj);
                        continue;
                    }
                    let t = Instant::now();
                    match c.read(obj) {
                        Ok(_) => {
                            hist.record(t.elapsed().as_micros() as u64);
                            renewals.fetch_add(1, Ordering::Relaxed);
                            renewed_this_pass = true;
                        }
                        Err(_) => {
                            failures.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                if !renewed_this_pass {
                    // Whole shard holds valid leases; sleep a slice of
                    // t_v instead of spinning the sweep.
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
            hist
        }));
    }
    std::thread::sleep(opts.duration);
    stop.store(true, Ordering::Relaxed);
    let mut hist = Histogram::new();
    for h in worker_handles {
        hist.merge(&h.join().unwrap());
    }
    let elapsed = t0.elapsed().as_secs_f64();

    let renewals = renewals.load(Ordering::Relaxed);
    let reads = reads.load(Ordering::Relaxed);
    let failures = failures.load(Ordering::Relaxed);
    let rps = renewals as f64 / elapsed;
    let ms = |v: u64| v as f64 / 1000.0;
    let loop_stats = reactors[0].loop_stats();

    println!(
        "renewals/s: {rps:.0}   (p50 {:.2} ms, p90 {:.2} ms, p99 {:.2} ms, max {:.2} ms)",
        ms(hist.percentile(0.50)),
        ms(hist.percentile(0.90)),
        ms(hist.percentile(0.99)),
        ms(hist.max()),
    );
    println!(
        "{renewals} renewals, {reads} reads, {failures} failures in {elapsed:.1} s; \
         reactor0: {} wakeups, {} frames in, {} frames out",
        loop_stats.wakeups, loop_stats.frames_in, loop_stats.frames_out
    );

    let json = format!(
        "{{\n  \"clients\": {},\n  \"connections\": {},\n  \"reactors\": {},\n  \
         \"workers\": {},\n  \"tv_ms\": {},\n  \"object_lease_ms\": {},\n  \
         \"duration_s\": {:.3},\n  \"connect_s\": {:.3},\n  \"renewals\": {},\n  \
         \"renewals_per_sec\": {:.1},\n  \"reads\": {},\n  \"failures\": {},\n  \
         \"latency_ms\": {{\"p50\": {:.3}, \"p90\": {:.3}, \"p99\": {:.3}, \
         \"max\": {:.3}, \"mean\": {:.3}}},\n  \"reactor0\": {{\"wakeups\": {}, \
         \"io_events\": {}, \"frames_in\": {}, \"frames_out\": {}}}\n}}\n",
        opts.clients,
        clients.len(),
        opts.reactors,
        opts.workers,
        opts.tv_ms,
        opts.object_lease_ms,
        elapsed,
        connect_secs,
        renewals,
        rps,
        reads,
        failures,
        ms(hist.percentile(0.50)),
        ms(hist.percentile(0.90)),
        ms(hist.percentile(0.99)),
        ms(hist.max()),
        hist.mean() / 1000.0,
        loop_stats.wakeups,
        loop_stats.io_events,
        loop_stats.frames_in,
        loop_stats.frames_out,
    );
    match std::fs::File::create(&opts.out).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("wrote {}", opts.out),
        Err(e) => {
            eprintln!("cannot write {}: {e}", opts.out);
            exit(1)
        }
    }

    if let Some(child) = &mut child {
        let _ = child.kill();
        let _ = child.wait();
    }
    // 10k clients mean 10k receive threads; an orderly shutdown joins
    // them one by one for no benefit. Exit hard instead.
    exit(if renewals == 0 { 1 } else { 0 });
}

/// One parallel pass over every client (used for lease warm-up).
fn sweep(clients: &Arc<Vec<CacheClient>>, workers: usize, f: impl Fn(usize, &CacheClient) + Sync) {
    std::thread::scope(|scope| {
        for w in 0..workers.max(1) {
            let clients = Arc::clone(clients);
            let f = &f;
            scope.spawn(move || {
                for i in (w..clients.len()).step_by(workers.max(1)) {
                    f(i, &clients[i]);
                }
            });
        }
    });
}

/// Spawns `vl serve` as a child on an ephemeral port and returns the
/// address it bound. The child is killed when the bench exits.
fn spawn_server(opts: &BenchOpts) -> (String, Child) {
    let exe = std::env::current_exe().expect("own executable path");
    let port_file = std::env::temp_dir().join(format!("vl-bench-port-{}", std::process::id()));
    let _ = std::fs::remove_file(&port_file);
    let child = Command::new(exe)
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--objects",
            &opts.objects.to_string(),
            "--volume-lease-ms",
            &opts.tv_ms.to_string(),
            "--object-lease-ms",
            &opts.object_lease_ms.to_string(),
            "--idle-ms",
            "60000",
            "--port-file",
            port_file.to_str().expect("utf-8 temp path"),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .unwrap_or_else(|e| {
            eprintln!("cannot spawn server child: {e}");
            exit(1)
        });
    let deadline = Instant::now() + Duration::from_secs(15);
    let port: u16 = loop {
        if let Ok(s) = std::fs::read_to_string(&port_file) {
            if let Ok(p) = s.trim().parse() {
                break p;
            }
        }
        if Instant::now() > deadline {
            eprintln!("server child never wrote {}", port_file.display());
            exit(1)
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    let _ = std::fs::remove_file(&port_file);
    (format!("127.0.0.1:{port}"), child)
}
