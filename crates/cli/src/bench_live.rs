//! `vl bench-live` — end-to-end load test of the readiness transport.
//!
//! Spawns a real `vl serve` child process, connects `--clients` live
//! [`CacheClient`]s to it over loopback TCP (a handful of shared
//! [`Reactor`]s multiplex all the sockets), and drives volume-lease
//! renewals for `--duration-s` seconds. A renewal is a read issued
//! while the client's leases have lapsed — the paper's steady-state
//! volume-lease traffic — and its full round trip (request, server
//! machine, response, wakeup) is timed.
//!
//! Two processes are used because the file-descriptor ceiling is per
//! process: 10 000 connections need ~10 000 fds on each side, and both
//! sides together would not fit under one default `RLIMIT_NOFILE`.
//!
//! `--reactors` is the *server's* shard count (`vl serve --reactors`).
//! A comma-separated list (`--reactors 1,4`) runs a scaling matrix:
//! each entry is benchmarked in a fresh child process (so sockets and
//! threads tear down for free between runs) with `--clients`
//! connections *per reactor*, and the per-run results are merged into
//! one `{"runs": [...]}` document. The matrix fails loudly if a run
//! with more reactors holds fewer connections than the first run.
//!
//! Results land in a JSON file (default `BENCH_live.json`) next to the
//! simulator's `BENCH_sweep.json`, and a human `renewals/s` line is
//! printed for CI to grep.

use crate::Args;
use std::io::Write as _;
use std::process::{exit, Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use vl_client::{CacheClient, ClientConfig};
use vl_metrics::Histogram;
use vl_net::poll::{PollConfig, Reactor};
use vl_net::NodeId;
use vl_server::WallClock;
use vl_types::{ClientId, ObjectId, ServerId};

struct BenchOpts {
    clients: u32,
    duration: Duration,
    tv_ms: u64,
    object_lease_ms: u64,
    objects: u64,
    workers: usize,
    /// Server-side shard count, forwarded to `vl serve --reactors`.
    server_reactors: usize,
    /// Client-side reactor pool multiplexing the benchmark's sockets.
    client_reactors: usize,
    out: String,
    /// External server to target; `None` spawns a child `vl serve`.
    addr: Option<String>,
}

/// Parses `--reactors`: one server shard count, or a comma-separated
/// matrix ("1,4") that triggers a multi-run scaling sweep.
fn reactor_matrix(args: &Args) -> Vec<usize> {
    let raw = args.value("--reactors").unwrap_or("1");
    raw.split(',')
        .map(|s| match s.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("invalid --reactors entry {s:?}: need integers >= 1 (e.g. 4 or 1,4)");
                exit(2)
            }
        })
        .collect()
}

pub fn run(args: &Args) {
    let matrix = reactor_matrix(args);
    if matrix.len() > 1 {
        run_matrix(args, &matrix)
    }
    let opts = BenchOpts {
        clients: args.parsed("--clients", 10_000u32),
        duration: Duration::from_secs(args.parsed("--duration-s", 10u64)),
        tv_ms: args.parsed("--tv-ms", 3_000u64),
        object_lease_ms: args.parsed("--object-lease-ms", 120_000u64),
        objects: args.parsed("--objects", 64u64),
        workers: args.parsed("--workers", 32usize),
        server_reactors: matrix[0],
        client_reactors: args.parsed("--client-reactors", 4usize),
        out: args.value("--out").unwrap_or("BENCH_live.json").to_string(),
        addr: args.value("--addr").map(String::from),
    };

    let (addr, mut child) = match &opts.addr {
        Some(a) => (a.clone(), None),
        None => {
            let (addr, child) = spawn_server(&opts);
            (addr, Some(child))
        }
    };
    let addr: std::net::SocketAddr = addr.parse().unwrap_or_else(|e| {
        eprintln!("bad server address {addr}: {e}");
        exit(2)
    });

    println!(
        "bench-live: {} clients -> {} ({} server reactor{}), {} client reactors, \
         {} workers, t_v={} ms, {} s",
        opts.clients,
        addr,
        opts.server_reactors,
        if opts.server_reactors == 1 { "" } else { "s" },
        opts.client_reactors,
        opts.workers,
        opts.tv_ms,
        opts.duration.as_secs()
    );

    // One reactor per ~2.5k connections; long transport idle deadline
    // so keepalive traffic does not drown the renewal signal.
    let poll_cfg = PollConfig {
        idle_deadline: Some(Duration::from_secs(60)),
        dial_timeout: Duration::from_secs(10),
        hello_timeout: Duration::from_secs(20),
        ..PollConfig::default()
    };
    let reactors: Vec<Reactor> = (0..opts.client_reactors.max(1))
        .map(|_| Reactor::spawn(poll_cfg.clone()).expect("spawn reactor"))
        .collect();

    // Dial + spawn all clients from a few threads; each client's
    // receive loop parks on a 1 s tick, so idle clients cost no CPU.
    let connect_t0 = Instant::now();
    let dial_threads = 8u32;
    let clients: Vec<CacheClient> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..dial_threads {
            let reactors = &reactors;
            let opts = &opts;
            handles.push(scope.spawn(move || {
                let mut mine = Vec::new();
                let mut id = t;
                while id < opts.clients {
                    let node = reactors[id as usize % reactors.len()].node(NodeId::Client(
                        ClientId(id + 1), // ClientId(0) is reserved for server events
                    ));
                    if let Err(e) = node.dial(addr) {
                        eprintln!("client {id} cannot connect: {e}");
                        exit(1)
                    }
                    let mut cfg = ClientConfig::new(ClientId(id + 1), ServerId(0));
                    cfg.link_tick = Duration::from_secs(1);
                    mine.push((id, CacheClient::spawn(cfg, node, WallClock::new())));
                    id += dial_threads;
                }
                mine
            }));
        }
        let mut all: Vec<(u32, CacheClient)> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_by_key(|(id, _)| *id);
        all.into_iter().map(|(_, c)| c).collect()
    });
    let connect_secs = connect_t0.elapsed().as_secs_f64();
    println!(
        "connected {} clients in {:.1} s ({:.0} dials/s)",
        clients.len(),
        connect_secs,
        clients.len() as f64 / connect_secs.max(1e-9)
    );

    // Warm-up: every client acquires its object + volume lease once, so
    // the measured window sees steady-state renewals, not cold misses.
    let clients = Arc::new(clients);
    let objects = opts.objects.max(1);
    sweep(&clients, opts.workers, |i, c| {
        let _ = c.read(ObjectId(i as u64 % objects));
    });

    // Measured window: workers sweep their shard, timing a renewal
    // round trip whenever a client's leases have lapsed.
    let stop = Arc::new(AtomicBool::new(false));
    let renewals = Arc::new(AtomicU64::new(0));
    let reads = Arc::new(AtomicU64::new(0));
    let failures = Arc::new(AtomicU64::new(0));
    let t0 = Instant::now();
    let mut worker_handles = Vec::new();
    for w in 0..opts.workers.max(1) {
        let clients = Arc::clone(&clients);
        let stop = Arc::clone(&stop);
        let renewals = Arc::clone(&renewals);
        let reads = Arc::clone(&reads);
        let failures = Arc::clone(&failures);
        let workers = opts.workers.max(1);
        worker_handles.push(std::thread::spawn(move || {
            let mut hist = Histogram::new(); // microseconds
            while !stop.load(Ordering::Relaxed) {
                let mut renewed_this_pass = false;
                for i in (w..clients.len()).step_by(workers) {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let c = &clients[i];
                    let obj = ObjectId(i as u64 % objects);
                    reads.fetch_add(1, Ordering::Relaxed);
                    if c.holds_valid_leases(obj) {
                        // Cache hit under valid leases: free, not timed.
                        let _ = c.read_suspect(obj);
                        continue;
                    }
                    let t = Instant::now();
                    match c.read(obj) {
                        Ok(_) => {
                            hist.record(t.elapsed().as_micros() as u64);
                            renewals.fetch_add(1, Ordering::Relaxed);
                            renewed_this_pass = true;
                        }
                        Err(_) => {
                            failures.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                if !renewed_this_pass {
                    // Whole shard holds valid leases; sleep a slice of
                    // t_v instead of spinning the sweep.
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
            hist
        }));
    }
    std::thread::sleep(opts.duration);
    stop.store(true, Ordering::Relaxed);
    let mut hist = Histogram::new();
    for h in worker_handles {
        hist.merge(&h.join().unwrap());
    }
    let elapsed = t0.elapsed().as_secs_f64();

    let renewals = renewals.load(Ordering::Relaxed);
    let reads = reads.load(Ordering::Relaxed);
    let failures = failures.load(Ordering::Relaxed);
    let rps = renewals as f64 / elapsed;
    let ms = |v: u64| v as f64 / 1000.0;
    let loop_stats = reactors[0].loop_stats();

    println!(
        "renewals/s: {rps:.0}   (p50 {:.2} ms, p90 {:.2} ms, p99 {:.2} ms, max {:.2} ms)",
        ms(hist.percentile(0.50)),
        ms(hist.percentile(0.90)),
        ms(hist.percentile(0.99)),
        ms(hist.max()),
    );
    println!(
        "{renewals} renewals, {reads} reads, {failures} failures in {elapsed:.1} s; \
         reactor0: {} wakeups, {} frames in, {} frames out",
        loop_stats.wakeups, loop_stats.frames_in, loop_stats.frames_out
    );

    let json = format!(
        "{{\n  \"clients\": {},\n  \"connections\": {},\n  \"reactors\": {},\n  \
         \"client_reactors\": {},\n  \
         \"workers\": {},\n  \"tv_ms\": {},\n  \"object_lease_ms\": {},\n  \
         \"duration_s\": {:.3},\n  \"connect_s\": {:.3},\n  \"renewals\": {},\n  \
         \"renewals_per_sec\": {:.1},\n  \"reads\": {},\n  \"failures\": {},\n  \
         \"latency_ms\": {{\"p50\": {:.3}, \"p90\": {:.3}, \"p99\": {:.3}, \
         \"max\": {:.3}, \"mean\": {:.3}}},\n  \"reactor0\": {{\"wakeups\": {}, \
         \"io_events\": {}, \"frames_in\": {}, \"frames_out\": {}}}\n}}\n",
        opts.clients,
        clients.len(),
        opts.server_reactors,
        opts.client_reactors,
        opts.workers,
        opts.tv_ms,
        opts.object_lease_ms,
        elapsed,
        connect_secs,
        renewals,
        rps,
        reads,
        failures,
        ms(hist.percentile(0.50)),
        ms(hist.percentile(0.90)),
        ms(hist.percentile(0.99)),
        ms(hist.max()),
        hist.mean() / 1000.0,
        loop_stats.wakeups,
        loop_stats.io_events,
        loop_stats.frames_in,
        loop_stats.frames_out,
    );
    match std::fs::File::create(&opts.out).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("wrote {}", opts.out),
        Err(e) => {
            eprintln!("cannot write {}: {e}", opts.out);
            exit(1)
        }
    }

    if let Some(child) = &mut child {
        let _ = child.kill();
        let _ = child.wait();
    }
    // 10k clients mean 10k receive threads; an orderly shutdown joins
    // them one by one for no benefit. Exit hard instead.
    exit(if renewals == 0 { 1 } else { 0 });
}

/// One parallel pass over every client (used for lease warm-up).
fn sweep(clients: &Arc<Vec<CacheClient>>, workers: usize, f: impl Fn(usize, &CacheClient) + Sync) {
    std::thread::scope(|scope| {
        for w in 0..workers.max(1) {
            let clients = Arc::clone(clients);
            let f = &f;
            scope.spawn(move || {
                for i in (w..clients.len()).step_by(workers.max(1)) {
                    f(i, &clients[i]);
                }
            });
        }
    });
}

/// Spawns `vl serve` as a child on an ephemeral port and returns the
/// address it bound. The child is killed when the bench exits.
fn spawn_server(opts: &BenchOpts) -> (String, Child) {
    let exe = std::env::current_exe().expect("own executable path");
    let port_file = std::env::temp_dir().join(format!("vl-bench-port-{}", std::process::id()));
    let _ = std::fs::remove_file(&port_file);
    let child = Command::new(exe)
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--objects",
            &opts.objects.to_string(),
            "--volume-lease-ms",
            &opts.tv_ms.to_string(),
            "--object-lease-ms",
            &opts.object_lease_ms.to_string(),
            "--idle-ms",
            "60000",
            "--reactors",
            &opts.server_reactors.to_string(),
            "--port-file",
            port_file.to_str().expect("utf-8 temp path"),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .unwrap_or_else(|e| {
            eprintln!("cannot spawn server child: {e}");
            exit(1)
        });
    let deadline = Instant::now() + Duration::from_secs(15);
    let port: u16 = loop {
        if let Ok(s) = std::fs::read_to_string(&port_file) {
            if let Ok(p) = s.trim().parse() {
                break p;
            }
        }
        if Instant::now() > deadline {
            eprintln!("server child never wrote {}", port_file.display());
            exit(1)
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    let _ = std::fs::remove_file(&port_file);
    (format!("127.0.0.1:{port}"), child)
}

/// Scaling matrix: one child `vl bench-live` process per reactor
/// count. `--clients` becomes the connection count *per reactor*, so a
/// 4-reactor run holds 4x the sockets of a 1-reactor run — the shape
/// of the acceptance gate (more shards must carry more connections,
/// never fewer). Each child spawns (and kills) its own server, so runs
/// are fully isolated. Never returns.
fn run_matrix(args: &Args, matrix: &[usize]) -> ! {
    if args.value("--addr").is_some() {
        eprintln!(
            "--reactors with a comma list spawns one server per run; \
             it cannot target an external --addr"
        );
        exit(2)
    }
    // Per-reactor default is deliberately smaller than the single-run
    // default: an 8-reactor entry already multiplies it by 8, and both
    // sides of the loopback pair burn one fd per connection.
    let per_reactor: u32 = args.parsed("--clients", 2_000u32);
    let out = args.value("--out").unwrap_or("BENCH_live.json");
    let exe = std::env::current_exe().expect("own executable path");

    let mut runs: Vec<(usize, String)> = Vec::new();
    for &r in matrix {
        let tmp =
            std::env::temp_dir().join(format!("vl-bench-live-{}-r{r}.json", std::process::id()));
        let _ = std::fs::remove_file(&tmp);
        println!(
            "--- bench-live matrix: {r} reactor(s), {} clients ---",
            per_reactor * r as u32
        );
        let mut cmd = Command::new(&exe);
        cmd.args([
            "bench-live",
            "--reactors",
            &r.to_string(),
            "--clients",
            &(per_reactor * r as u32).to_string(),
            "--out",
            tmp.to_str().expect("utf-8 temp path"),
        ]);
        for flag in [
            "--duration-s",
            "--tv-ms",
            "--object-lease-ms",
            "--objects",
            "--workers",
            "--client-reactors",
        ] {
            if let Some(v) = args.value(flag) {
                cmd.arg(flag).arg(v);
            }
        }
        let status = cmd.status().unwrap_or_else(|e| {
            eprintln!("cannot spawn bench child: {e}");
            exit(1)
        });
        if !status.success() {
            eprintln!("bench run with {r} reactor(s) failed ({status})");
            exit(1)
        }
        let doc = std::fs::read_to_string(&tmp).unwrap_or_else(|e| {
            eprintln!("bench run with {r} reactor(s) wrote no result: {e}");
            exit(1)
        });
        let _ = std::fs::remove_file(&tmp);
        runs.push((r, doc));
    }

    // The gate of ISSUE acceptance criterion 3: every later (wider)
    // run must hold at least as many connections as the first.
    let first_conns = json_u64(&runs[0].1, "connections").unwrap_or(0);
    let first_rps = json_f64(&runs[0].1, "renewals_per_sec").unwrap_or(0.0);
    println!("\nscaling vs {} reactor(s):", runs[0].0);
    let mut failed = false;
    for (r, doc) in &runs {
        let conns = json_u64(doc, "connections").unwrap_or(0);
        let rps = json_f64(doc, "renewals_per_sec").unwrap_or(0.0);
        println!(
            "  {r} reactor(s): {conns} connections ({:.2}x), {rps:.0} renewals/s ({:.2}x)",
            conns as f64 / (first_conns.max(1)) as f64,
            rps / first_rps.max(1e-9),
        );
        if conns < first_conns {
            eprintln!(
                "FAIL: {r}-reactor run held {conns} connections, \
                 fewer than the {}-reactor run's {first_conns}",
                runs[0].0
            );
            failed = true;
        }
    }

    let mut doc = String::from("{\n  \"runs\": [\n");
    for (i, (_, run)) in runs.iter().enumerate() {
        for line in run.trim_end().lines() {
            doc.push_str("    ");
            doc.push_str(line);
            doc.push('\n');
        }
        doc.pop();
        doc.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    doc.push_str("  ]\n}\n");
    match std::fs::File::create(out).and_then(|mut f| f.write_all(doc.as_bytes())) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("cannot write {out}: {e}");
            exit(1)
        }
    }
    exit(if failed { 1 } else { 0 })
}

/// Pulls an integer field out of a bench result without a JSON parser
/// (the documents are our own `format!` output, shapes known).
fn json_u64(doc: &str, key: &str) -> Option<u64> {
    let rest = field(doc, key)?;
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Float twin of [`json_u64`].
fn json_f64(doc: &str, key: &str) -> Option<f64> {
    let rest = field(doc, key)?;
    let end = rest
        .find(|c: char| !c.is_ascii_digit() && c != '.')
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn field<'a>(doc: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    Some(doc[doc.find(&pat)? + pat.len()..].trim_start())
}
