//! `vl` — command-line front end for the live volume-lease stack.
//!
//! ```text
//! vl serve --addr 127.0.0.1:7400 [--objects 10] [--volume-lease-ms 2000]
//!          [--object-lease-ms 60000] [--write-every-ms 5000] [--best-effort]
//!          [--self-inval [--skew-bound-ms 1000]] [--stable PATH] [--trace-out PATH]
//!          [--chaos-profile off|drops|delays|partitions|havoc] [--chaos-seed N]
//!     Run a lease server over TCP, seeding `--objects` demo objects and
//!     optionally rewriting one of them on a timer so invalidations flow.
//!     With a chaos profile the server's endpoint is wrapped in the
//!     seeded fault injector from `vl-net`, so every connected client
//!     sees drops/delays/resets without any external tooling.
//!
//! vl get --addr 127.0.0.1:7400 --object 3 [--client-id 1] [--watch MS]
//!     Read an object with strong consistency; `--watch` re-reads on an
//!     interval and prints every observed version change.
//!
//! vl demo
//!     Self-contained in-process walkthrough: server, three clients, a
//!     partition, delayed invalidations, and a reconnection.
//!
//! vl gen --out PATH [--preset smoke|medium|paper] [--seed N]
//!     Generate a synthetic web trace and cache it in the `vltrace`
//!     binary format.
//!
//! vl sim --trace PATH --protocol NAME [--t SECS] [--tv SECS] [--d SECS]
//!        [--trace-out PATH]
//!     Replay a cached trace under one consistency algorithm and print
//!     its cost summary. Protocols: poll-each-read, poll, callback,
//!     lease, wait-lease, self-inval, volume, delay (`--skew` sets the
//!     self-inval clock-skew bound ε, seconds). `--trace-out`
//!     additionally writes every protocol event as JSONL for `vl report`.
//!
//! vl sim --chaos-profile off|drops|delays|partitions|havoc [--chaos-seed N]
//!        [--steps N] [--self-inval [--skew-bound-ms N]] [--clock-skew-ms N]
//!     Chaos mode: no trace needed. Runs the deterministic state-machine
//!     fault harness with a profile-derived fault mix and prints the
//!     invariant report; exits non-zero if any invariant was violated.
//!     `--self-inval` switches the machines to self-invalidation with
//!     precise clocks (skew bound ε from `--skew-bound-ms`), and
//!     `--clock-skew-ms` injects real per-client clock error — push it
//!     past ε to watch the protocol's hazard surface as violations.
//!
//! vl report --trace PATH [--top N]
//!     Summarize a JSONL protocol trace (from `--trace-out` here or on
//!     the figure binaries): per-run message mix, stale reads,
//!     write-delay percentiles, invalidation batches, hottest volumes,
//!     and — when the trace interleaves several servers — a per-server
//!     breakdown.
//!
//! vl rebalance --map FILE --volume N --to ID [--from ID] [--timeout-ms N]
//!     Move a volume between two running servers, live. The coordinator
//!     dials both (addresses from the topology FILE), asks the current
//!     owner for an epoch-bumped handoff manifest, and relays it to the
//!     gaining server; clients re-sync via the ordinary MUST_RENEW_ALL
//!     path. `--from` defaults to the map's rendezvous owner.
//! ```
//!
//! `vl serve --shard-map FILE` loads the same topology file and seeds
//! the server's routing table, so requests for volumes it does not host
//! answer WRONG_SHARD redirects. Topology files are one server per
//! line, `<server-id> <host:port>`, with `#` comments.
//!
//! # Layering
//!
//! Per DESIGN.md §7 the binary holds no protocol logic: `serve`/`get`/
//! `demo` assemble the thin drivers (`vl-server`, `vl-client`) over a
//! transport, `gen`/`sim` call the pure workload and simulator layers,
//! and `report` folds a JSONL trace with the same `vl-metrics`
//! histograms the simulator records into.

mod bench_live;
mod report;

use bytes::Bytes;
use std::process::exit;
use std::sync::Arc;
use std::time::Duration as StdDuration;
use vl_client::{CacheClient, ClientConfig};
use vl_net::chaos::{ChaosNet, ChaosProfile};
use vl_net::tcp::TcpNode;
use vl_net::{Channel, InMemoryNetwork, NodeId};
use vl_server::{LeaseServer, ServerConfig, WallClock, WriteMode};
use vl_types::{ClientId, ObjectId, ServerId, ShardMap, VolumeId};

fn usage() -> ! {
    eprintln!(
        "usage:\n  vl serve --addr HOST:PORT [--objects N] [--volume-lease-ms N] \
         [--object-lease-ms N] [--write-every-ms N] [--best-effort] \
         [--self-inval [--skew-bound-ms N]] [--stable PATH] \
         [--trace-out PATH] [--chaos-profile off|drops|delays|partitions|havoc] \
         [--chaos-seed N] [--port-file PATH] [--idle-ms N] [--queue-cap N] \
         [--reactors N] [--shard-map FILE]\n  \
         vl get --addr HOST:PORT --object N [--client-id N] [--watch MS] [--self-inval]\n  \
         vl demo\n  \
         vl gen --out PATH [--preset smoke|medium|paper] [--seed N]\n  \
         vl sim --trace PATH --protocol NAME [--t S] [--tv S] [--d S|inf] [--skew S] \
         [--trace-out PATH]\n  \
         vl sim --chaos-profile NAME [--chaos-seed N] [--steps N] \
         [--self-inval [--skew-bound-ms N]] [--clock-skew-ms N]\n  \
         vl report --trace PATH [--top N]\n  \
         vl rebalance --map FILE --volume N --to ID [--from ID] [--timeout-ms N]\n  \
         vl bench-live [--clients N] [--duration-s N] [--tv-ms N] [--workers N] \
         [--reactors N,N,...] [--client-reactors N] [--out PATH] [--addr HOST:PORT]"
    );
    exit(2)
}

/// Tiny flag parser: `--name value` pairs plus boolean flags.
struct Args(Vec<String>);

impl Args {
    fn flag(&self, name: &str) -> bool {
        self.0.iter().any(|a| a == name)
    }
    fn value(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.0.get(i + 1))
            .map(String::as_str)
    }
    fn parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.value(name) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("invalid value for {name}: {v}");
                exit(2)
            }),
        }
    }
}

/// Parses `--chaos-profile` / `--chaos-seed`. A seed without a profile
/// implies `havoc`; profile `off` (or neither flag) means no chaos.
fn chaos_opts(args: &Args) -> Option<(ChaosProfile, u64)> {
    let seed: u64 = args.parsed("--chaos-seed", 42);
    let profile = match args.value("--chaos-profile") {
        Some(v) => v.parse().unwrap_or_else(|e| {
            eprintln!("{e}");
            exit(2)
        }),
        None if args.value("--chaos-seed").is_some() => ChaosProfile::Havoc,
        None => ChaosProfile::Off,
    };
    (profile != ChaosProfile::Off).then_some((profile, seed))
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first().map(String::as_str) else {
        usage()
    };
    let args = Args(argv[1..].to_vec());
    match cmd {
        "serve" => serve(&args),
        "get" => get(&args),
        "demo" => demo(),
        "gen" => gen(&args),
        "sim" => sim(&args),
        "report" => report_cmd(&args),
        "rebalance" => rebalance_cmd(&args),
        "bench-live" => bench_live::run(&args),
        "--help" | "-h" | "help" => usage(),
        other => {
            eprintln!("unknown subcommand '{other}'");
            usage()
        }
    }
}

fn gen(args: &Args) {
    use vl_workload::{TraceGenerator, WorkloadConfig, WorkloadPreset};
    let Some(out) = args.value("--out") else {
        eprintln!("gen needs --out PATH");
        exit(2)
    };
    let preset = match args.value("--preset").unwrap_or("medium") {
        "smoke" => WorkloadPreset::Smoke,
        "medium" => WorkloadPreset::Medium,
        "paper" => WorkloadPreset::Paper,
        other => {
            eprintln!("unknown preset '{other}'");
            exit(2)
        }
    };
    let mut cfg = WorkloadConfig::preset(preset);
    if let Some(seed) = args.value("--seed") {
        cfg.seed = seed.parse().unwrap_or_else(|_| {
            eprintln!("--seed must be an integer");
            exit(2)
        });
    }
    let trace = TraceGenerator::new(cfg).generate();
    let mut file = std::io::BufWriter::new(std::fs::File::create(out).unwrap_or_else(|e| {
        eprintln!("cannot create {out}: {e}");
        exit(1)
    }));
    vl_workload::io::write_trace(&mut file, &trace).unwrap_or_else(|e| {
        eprintln!("write failed: {e}");
        exit(1)
    });
    println!(
        "wrote {out}: {} reads, {} writes, {} objects, {} volumes, {:.1} days",
        trace.read_count(),
        trace.write_count(),
        trace.universe().object_count(),
        trace.universe().volume_count(),
        trace.span().as_secs_f64() / 86_400.0
    );
}

fn sim(args: &Args) {
    use vl_core::{ProtocolKind, SimulationBuilder};
    use vl_types::Duration;
    if let Some((profile, seed)) = chaos_opts(args) {
        return sim_chaos(args, profile, seed);
    }
    let Some(path) = args.value("--trace") else {
        eprintln!("sim needs --trace PATH (create one with `vl gen`)");
        exit(2)
    };
    let Some(protocol) = args.value("--protocol") else {
        eprintln!("sim needs --protocol NAME");
        exit(2)
    };
    let t = Duration::from_secs(args.parsed("--t", 100_000u64));
    let tv = Duration::from_secs(args.parsed("--tv", 10u64));
    let d = match args.value("--d") {
        None | Some("inf") => Duration::MAX,
        Some(v) => Duration::from_secs(v.parse().unwrap_or_else(|_| {
            eprintln!("--d must be an integer or 'inf'");
            exit(2)
        })),
    };
    let kind = match protocol {
        "poll-each-read" => ProtocolKind::PollEachRead,
        "poll" => ProtocolKind::Poll { timeout: t },
        "callback" => ProtocolKind::Callback,
        "lease" => ProtocolKind::Lease { timeout: t },
        "wait-lease" => ProtocolKind::WaitingLease { timeout: t },
        "self-inval" => ProtocolKind::SelfInval {
            timeout: t,
            skew_bound: Duration::from_secs(args.parsed("--skew", 1u64)),
        },
        "volume" => ProtocolKind::VolumeLease {
            volume_timeout: tv,
            object_timeout: t,
        },
        "delay" => ProtocolKind::DelayedInvalidation {
            volume_timeout: tv,
            object_timeout: t,
            inactive_discard: d,
        },
        other => {
            eprintln!(
                "unknown protocol '{other}' (want poll-each-read|poll|callback|lease|                 wait-lease|self-inval|volume|delay)"
            );
            exit(2)
        }
    };
    let mut file = std::io::BufReader::new(std::fs::File::open(path).unwrap_or_else(|e| {
        eprintln!("cannot open {path}: {e}");
        exit(1)
    }));
    let trace = vl_workload::io::read_trace(&mut file).unwrap_or_else(|e| {
        eprintln!("cannot read trace: {e}");
        exit(1)
    });
    let report = match args.value("--trace-out") {
        None => SimulationBuilder::new(kind).run(&trace),
        Some(out) => {
            use vl_metrics::{JsonlSink, TraceSink};
            let file = std::fs::File::create(out).unwrap_or_else(|e| {
                eprintln!("cannot create {out}: {e}");
                exit(1)
            });
            let sink: Box<dyn TraceSink> = Box::new(JsonlSink::new(file));
            let (report, mut sink) = SimulationBuilder::new(kind).run_traced(&trace, sink);
            sink.flush();
            println!("(protocol trace written to {out} — inspect with `vl report --trace {out}`)");
            report
        }
    };
    println!("protocol:        {kind}");
    println!("reads:           {}", report.summary.reads);
    println!("messages:        {}", report.summary.messages);
    println!("msgs/read:       {:.4}", report.messages_per_read());
    println!("bytes:           {}", report.summary.bytes);
    println!(
        "stale reads:     {} ({:.3}%)",
        report.summary.stale_reads,
        report.summary.stale_fraction * 100.0
    );
    println!(
        "max write delay: {:.1}s",
        report.summary.max_write_delay_secs
    );
}

/// `vl sim --chaos-profile ...`: run the deterministic fault harness
/// with a fault mix derived from the named profile and report whether
/// the consistency invariants held.
fn sim_chaos(args: &Args, profile: ChaosProfile, seed: u64) {
    use vl_core::machine::harness::{run, FaultConfig};
    use vl_types::Duration;
    let mut cfg = FaultConfig::new(seed);
    cfg.steps = args.parsed("--steps", cfg.steps);
    if args.flag("--self-inval") {
        cfg.self_inval = Some(Duration::from_millis(
            args.parsed("--skew-bound-ms", 1_000u64),
        ));
    }
    cfg.clock_skew = Duration::from_millis(args.parsed("--clock-skew-ms", 0u64));
    // The harness expresses faults per workload step rather than per
    // message, so each wire profile maps onto the nearest step mix.
    match profile {
        ChaosProfile::Off => {
            cfg.drop_prob = 0.0;
            cfg.client_crash_prob = 0.0;
            cfg.server_crash_prob = 0.0;
            cfg.partition_prob = 0.0;
        }
        ChaosProfile::Drops => {
            cfg.drop_prob = 0.10;
            cfg.client_crash_prob = 0.0;
            cfg.server_crash_prob = 0.0;
            cfg.partition_prob = 0.0;
        }
        ChaosProfile::Delays => {
            cfg.drop_prob = 0.0;
            cfg.client_crash_prob = 0.0;
            cfg.server_crash_prob = 0.0;
            cfg.partition_prob = 0.0;
            cfg.latency = Duration::from_millis(30);
        }
        ChaosProfile::Partitions => {
            cfg.drop_prob = 0.02;
            cfg.client_crash_prob = 0.0;
            cfg.server_crash_prob = 0.0;
            cfg.partition_prob = 0.10;
            cfg.partition_for = Duration::from_millis(150);
        }
        // Havoc keeps the harness's "fairly hostile" default mix,
        // which already includes client and server crashes.
        ChaosProfile::Havoc => {}
    }
    let report = run(&cfg);
    println!("chaos profile:   {profile} (seed {seed})");
    if let Some(eps) = cfg.self_inval {
        println!(
            "protocol:        self-inval (skew bound {:.2}s, injected skew up to {:.2}s)",
            eps.as_secs_f64(),
            cfg.clock_skew.as_secs_f64()
        );
        println!("invalidations:   {} sent", report.invalidations_sent);
    }
    println!("steps:           {}", report.steps);
    println!(
        "reads:           {} delivered ({} local), {} timed out, {} aborted",
        report.reads_delivered, report.local_reads, report.reads_timed_out, report.reads_aborted
    );
    println!(
        "writes:          {} enqueued, {} completed, {} lost",
        report.writes_enqueued, report.writes_completed, report.writes_lost
    );
    println!(
        "max write delay: {:.2}s",
        report.max_write_delay.as_secs_f64()
    );
    println!(
        "faults:          {} msgs dropped, {} partitions, {} client crashes, {} server crashes",
        report.messages_dropped, report.partitions, report.client_crashes, report.server_crashes
    );
    println!("reconnections:   {}", report.reconnections);
    println!(
        "invariants:      {} checks, {} violations",
        report.invariant_checks,
        report.violations.len()
    );
    if !report.violations.is_empty() {
        for v in &report.violations {
            eprintln!("VIOLATION: {v}");
        }
        exit(1);
    }
}

fn report_cmd(args: &Args) {
    let Some(path) = args.value("--trace") else {
        eprintln!("report needs --trace PATH (write one with --trace-out)");
        exit(2)
    };
    let top: usize = args.parsed("--top", 3);
    let file = std::fs::File::open(path).unwrap_or_else(|e| {
        eprintln!("cannot open {path}: {e}");
        exit(1)
    });
    let (runs, skipped) = report::summarize(std::io::BufReader::new(file)).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1)
    });
    if runs.is_empty() {
        println!("{path}: no trace events");
        return;
    }
    for run in &runs {
        print!("{}", report::render(run, top));
    }
    if skipped > 0 {
        eprintln!("({skipped} unparseable lines skipped)");
    }
}

/// Parses a shard-topology file: one `<server-id> <host:port>` pair per
/// line, blank lines and `#` comments ignored. Returns `(id, addr)`
/// pairs in file order.
fn read_topology(path: &str) -> Vec<(ServerId, String)> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read topology {path}: {e}");
        exit(1)
    });
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(id), Some(addr), None) = (parts.next(), parts.next(), parts.next()) else {
            eprintln!("{path}:{}: want `<server-id> <host:port>`", lineno + 1);
            exit(2)
        };
        let id: u32 = id.parse().unwrap_or_else(|_| {
            eprintln!("{path}:{}: server id must be an integer", lineno + 1);
            exit(2)
        });
        out.push((ServerId(id), addr.to_owned()));
    }
    if out.is_empty() {
        eprintln!("{path}: no servers listed");
        exit(2)
    }
    out
}

/// `vl rebalance` — coordinator for a live volume handoff: two TCP
/// dials and the two-hop relay from `vl_server::rebalance`.
fn rebalance_cmd(args: &Args) {
    let Some(map_path) = args.value("--map") else {
        eprintln!("rebalance needs --map FILE (the shard topology)");
        exit(2)
    };
    let Some(volume) = args.value("--volume") else {
        eprintln!("rebalance needs --volume N");
        exit(2)
    };
    let volume = VolumeId(volume.parse().unwrap_or_else(|_| {
        eprintln!("--volume must be an integer");
        exit(2)
    }));
    let Some(to) = args.value("--to") else {
        eprintln!("rebalance needs --to SERVER_ID");
        exit(2)
    };
    let to = ServerId(to.parse().unwrap_or_else(|_| {
        eprintln!("--to must be an integer server id");
        exit(2)
    }));
    let topology = read_topology(map_path);
    let map = ShardMap::new(topology.iter().map(|&(id, _)| id).collect());
    let from = match args.value("--from") {
        Some(v) => ServerId(v.parse().unwrap_or_else(|_| {
            eprintln!("--from must be an integer server id");
            exit(2)
        })),
        // Without --from, the rendezvous owner is the presumed holder.
        None => map.owner(volume).expect("topology is non-empty"),
    };
    if from == to {
        eprintln!("volume {volume} is already on server {to}");
        return;
    }
    let addr_of = |id: ServerId| -> std::net::SocketAddr {
        let Some((_, addr)) = topology.iter().find(|&&(s, _)| s == id) else {
            eprintln!("server {id} is not in {map_path}");
            exit(2)
        };
        addr.parse().unwrap_or_else(|e| {
            eprintln!("bad address {addr} for server {id}: {e}");
            exit(2)
        })
    };
    // The coordinator identifies itself as a server outside the fleet's
    // id range so replies route back over these connections.
    let coord = NodeId::Server(ServerId(args.parsed("--coordinator-id", 1000u32)));
    let dial = |id: ServerId| {
        TcpNode::dial(coord, addr_of(id)).unwrap_or_else(|e| {
            eprintln!("cannot connect to server {id}: {e}");
            exit(1)
        })
    };
    let (loser, gainer) = (dial(from), dial(to));
    let timeout = StdDuration::from_millis(args.parsed("--timeout-ms", 5_000u64));
    match vl_server::rebalance(&loser, from, &gainer, to, volume, timeout) {
        Ok(out) => println!(
            "moved {volume} from server {from} to server {to}: epoch {}, \
             {} objects shipped, write gate {}",
            out.epoch, out.objects, out.write_gate
        ),
        Err(e) => {
            eprintln!("rebalance failed: {e}");
            exit(1)
        }
    }
}

fn serve(args: &Args) {
    let Some(addr) = args.value("--addr") else {
        eprintln!("serve needs --addr HOST:PORT");
        exit(2)
    };
    let server_id = ServerId(args.parsed("--server-id", 0u32));
    let objects: u64 = args.parsed("--objects", 10);
    let cfg = ServerConfig {
        volume_lease: StdDuration::from_millis(args.parsed("--volume-lease-ms", 2_000)),
        object_lease: StdDuration::from_millis(args.parsed("--object-lease-ms", 60_000)),
        write_mode: if args.flag("--best-effort") {
            WriteMode::BestEffort
        } else {
            WriteMode::Blocking
        },
        stable_path: args.value("--stable").map(Into::into),
        self_inval: args
            .flag("--self-inval")
            .then(|| StdDuration::from_millis(args.parsed("--skew-bound-ms", 1_000u64))),
        ..ServerConfig::new(server_id)
    };
    let mut tcp_cfg = vl_net::tcp::TcpConfig::default();
    if let Some(ms) = args.value("--idle-ms") {
        let ms: u64 = ms.parse().unwrap_or_else(|_| {
            eprintln!("--idle-ms must be an integer (0 disables the idle deadline)");
            exit(2)
        });
        tcp_cfg.idle_deadline = (ms > 0).then(|| StdDuration::from_millis(ms));
    }
    tcp_cfg.queue_cap = args.parsed("--queue-cap", tcp_cfg.queue_cap);
    let reactors: usize = args.parsed("--reactors", 1usize).max(1);
    // One reactor keeps the proven single-loop compat path; more shard
    // the fd set across N epoll loops via SO_REUSEPORT (DESIGN.md §12).
    let (node, bound): (Arc<dyn Channel>, std::net::SocketAddr) = if reactors > 1 {
        match vl_net::shard::ShardedNode::listen(
            NodeId::Server(server_id),
            addr,
            reactors,
            tcp_cfg.to_poll(),
        ) {
            Ok(n) => {
                let b = n.local_addr();
                (Arc::new(n), b)
            }
            Err(e) => {
                eprintln!("cannot listen on {addr} with {reactors} reactors: {e}");
                exit(1)
            }
        }
    } else {
        match TcpNode::listen_with(NodeId::Server(server_id), addr, tcp_cfg) {
            Ok(n) => {
                let b = n.local_addr().expect("listening");
                (Arc::new(n), b)
            }
            Err(e) => {
                eprintln!("cannot listen on {addr}: {e}");
                exit(1)
            }
        }
    };
    // With `--addr 127.0.0.1:0` the kernel picks the port; a parent
    // process (the live benchmark, scripts) learns it from this file.
    if let Some(path) = args.value("--port-file") {
        let tmp = format!("{path}.tmp");
        if let Err(e) = std::fs::write(&tmp, format!("{}\n", bound.port()))
            .and_then(|()| std::fs::rename(&tmp, path))
        {
            eprintln!("cannot write --port-file {path}: {e}");
            exit(1)
        }
    }
    let endpoint: Arc<dyn Channel> = match chaos_opts(args) {
        None => node,
        Some((profile, seed)) => {
            let chaos = ChaosNet::new(profile.config(seed));
            println!("(chaos profile '{profile}' seed {seed} injected on the server endpoint)");
            Arc::new(chaos.wrap_arc(node))
        }
    };
    let clock = WallClock::new();
    let server = match args.value("--trace-out") {
        None => LeaseServer::spawn(cfg, endpoint, clock),
        Some(out) => {
            use vl_metrics::JsonlSink;
            let file = std::fs::File::create(out).unwrap_or_else(|e| {
                eprintln!("cannot create {out}: {e}");
                exit(1)
            });
            println!("(tracing protocol events to {out})");
            LeaseServer::spawn_traced(cfg, endpoint, clock, Box::new(JsonlSink::new(file)))
        }
    };
    for i in 0..objects {
        server.create_object(ObjectId(i), Bytes::from(format!("object {i}, version 1")));
    }
    // A topology file turns this server into one shard of a fleet: it
    // learns the membership and redirects volumes it does not host.
    if let Some(path) = args.value("--shard-map") {
        let topology = read_topology(path);
        let map = ShardMap::new(topology.iter().map(|&(id, _)| id).collect());
        println!(
            "(shard map v{} over {} servers loaded from {path})",
            map.version(),
            map.servers().len()
        );
        server.set_shard_map(map);
    }
    println!(
        "vl server {server_id} listening on {bound} with {objects} objects \
         ({reactors} reactor{})",
        if reactors == 1 { "" } else { "s" }
    );

    let write_every = args.parsed("--write-every-ms", 0u64);
    let mut version = 1u64;
    loop {
        std::thread::sleep(StdDuration::from_millis(if write_every > 0 {
            write_every
        } else {
            5_000
        }));
        if write_every > 0 {
            version += 1;
            let target = ObjectId(version % objects);
            let out = server.write(
                target,
                Bytes::from(format!("object {}, version {version}", target.raw())),
            );
            println!(
                "wrote {target} v{version}: {} invalidated, {} queued, {} waited out, {} delay",
                out.invalidations_sent, out.queued, out.waited_out, out.delay
            );
        } else {
            let s = server.stats();
            println!(
                "stats: {} in / {} out msgs, {} writes, {} unreachable, epoch {}",
                s.msgs_in, s.msgs_out, s.writes, s.unreachable, s.epoch
            );
        }
    }
}

fn get(args: &Args) {
    let Some(addr) = args.value("--addr") else {
        eprintln!("get needs --addr HOST:PORT");
        exit(2)
    };
    let Some(object) = args.value("--object") else {
        eprintln!("get needs --object N");
        exit(2)
    };
    let object = ObjectId(object.parse().unwrap_or_else(|_| {
        eprintln!("--object must be an integer");
        exit(2)
    }));
    let client_id = ClientId(args.parsed("--client-id", 1u32));
    let server_id = ServerId(args.parsed("--server-id", 0u32));
    let addr = addr.parse().unwrap_or_else(|e| {
        eprintln!("bad --addr: {e}");
        exit(2)
    });
    let node = match TcpNode::dial(NodeId::Client(client_id), addr) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("cannot connect: {e}");
            exit(1)
        }
    };
    let mut client_cfg = ClientConfig::new(client_id, server_id);
    client_cfg.self_inval = args.flag("--self-inval");
    let client = CacheClient::spawn(client_cfg, node, WallClock::new());
    let watch: u64 = args.parsed("--watch", 0);
    let mut last: Option<Bytes> = None;
    loop {
        match client.read(object) {
            Ok(data) => {
                if last.as_ref() != Some(&data) {
                    println!("{object} = {:?}", String::from_utf8_lossy(&data));
                    last = Some(data);
                }
            }
            Err(e) => eprintln!("read failed: {e}"),
        }
        if watch == 0 {
            break;
        }
        std::thread::sleep(StdDuration::from_millis(watch));
    }
    client.shutdown();
}

fn demo() {
    println!("— volume leases live demo —\n");
    let net = InMemoryNetwork::new();
    let clock = WallClock::new();
    let origin = ServerId(0);
    let server = LeaseServer::spawn(
        ServerConfig {
            volume_lease: StdDuration::from_millis(500),
            object_lease: StdDuration::from_secs(60),
            ..ServerConfig::new(origin)
        },
        net.endpoint(NodeId::Server(origin)),
        clock,
    );
    server.create_object(ObjectId(0), Bytes::from_static(b"v1"));
    let clients: Vec<CacheClient> = (1..=3)
        .map(|i| {
            CacheClient::spawn(
                ClientConfig::new(ClientId(i), origin),
                net.endpoint(NodeId::Client(ClientId(i))),
                clock,
            )
        })
        .collect();
    for c in &clients {
        c.read(ObjectId(0)).expect("warm cache");
    }
    println!("1. three clients cached o0 under 60 s object leases");

    let out = server.write(ObjectId(0), Bytes::from_static(b"v2"));
    println!(
        "2. write v2 → {} invalidations, {} delay (all clients reachable)",
        out.invalidations_sent, out.delay
    );

    // Everyone re-reads v2, re-acquiring leases.
    for c in &clients {
        c.read(ObjectId(0)).expect("refetch v2");
    }
    net.partition(NodeId::Client(ClientId(1)), NodeId::Server(origin));
    let out = server.write(ObjectId(0), Bytes::from_static(b"v3"));
    println!(
        "3. client 1 partitioned; write v3 waited {} — bounded by t_v = 0.5 s, \
         not the 60 s object lease ({} waited out)",
        out.delay, out.waited_out
    );

    // Clients 2–3 re-read v3, then go idle past t_v; their volume
    // leases lapse, so the next write queues instead of messaging.
    for c in &clients[1..] {
        c.read(ObjectId(0)).expect("refetch v3");
    }
    std::thread::sleep(StdDuration::from_millis(700));
    let out = server.write(ObjectId(0), Bytes::from_static(b"v4"));
    println!(
        "4. clients 2–3 idle past t_v; write v4 sent {} invalidations, queued {} \
         (delayed invalidations)",
        out.invalidations_sent, out.queued
    );

    net.heal(NodeId::Client(ClientId(1)), NodeId::Server(origin));
    for (i, c) in clients.iter().enumerate() {
        let data = c.read(ObjectId(0)).expect("all healed");
        assert_eq!(&data[..], b"v4");
        let s = c.stats();
        println!(
            "5.{} client {} reads v4 (reconnections {}, batched invals {})",
            i + 1,
            i + 1,
            s.reconnections,
            s.batched_invalidations
        );
    }
    println!("\nno client ever observed a stale value.");
    for c in clients {
        c.shutdown();
    }
    server.shutdown();
}
