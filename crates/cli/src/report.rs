//! `vl report` — summarize a JSONL protocol trace.
//!
//! Traces are produced by `--trace-out` on the figure binaries, `vl sim`,
//! and `vl serve`. A file holds one or more runs, each introduced by a
//! `{"run":"..."}` label line followed by its events; this module folds
//! the events of each run into a compact per-algorithm summary: message
//! mix (count + bytes per wire message kind), read/stale-read counts,
//! write-delay percentiles, invalidation-batch sizes, and the hottest
//! volumes by event count.

use std::collections::BTreeMap;
use std::io::BufRead;
use vl_metrics::trace::{parse_line, TraceLine};
use vl_metrics::{Event, EventKind, Histogram};
use vl_types::Timestamp;

/// Everything `vl report` prints about one run.
#[derive(Clone, Debug, Default)]
pub struct RunSummary {
    /// The run label (the protocol's `Display`, e.g. `Delay(10, 1e5, inf)`).
    pub label: String,
    /// Total events in the run.
    pub events: u64,
    /// Timestamp of the last event.
    pub span: Timestamp,
    /// Per-message-kind `(count, bytes)` from `message` events, keyed by
    /// the wire-protocol message name.
    pub messages: BTreeMap<String, (u64, u64)>,
    /// Reads observed (from `read` events).
    pub reads: u64,
    /// Reads that returned stale data.
    pub stale_reads: u64,
    /// Write delays, milliseconds (from `write_committed` events).
    pub write_delay_ms: Histogram,
    /// Piggybacked-invalidation batch sizes (from `inval_batch` events).
    pub inval_batch: Histogram,
    /// Events per volume, keyed by raw volume id.
    pub volume_events: BTreeMap<u64, u64>,
    /// Transport send-queue depth samples (from `send_queue` events).
    pub queue_depth: Histogram,
    /// Worst send-queue peak depth seen for any peer.
    pub queue_peak: u64,
    /// Latest cumulative overflow-drop count per client (from
    /// `queue_drop` events; the counters are monotonic, so the last
    /// sample per peer is the total).
    pub queue_drops: BTreeMap<u64, u64>,
    /// Latest cumulative kernel-backpressure count per client.
    pub backpressure: BTreeMap<u64, u64>,
    /// Per-shard breakdown of the transport, present only when the
    /// trace came from a sharded server (`vl serve --reactors N`,
    /// N > 1). The shard tag is a reporting *dimension*: every
    /// shard-annotated event also folds into the run-wide totals
    /// above, so a sharded trace and a single-reactor trace of the
    /// same workload summarize identically outside this map.
    pub shards: BTreeMap<u32, ShardSummary>,
    /// Per-server breakdown, keyed by raw server id. Like the shard
    /// tag, the server is a *dimension*: every event also folds into
    /// the run-wide totals, and the section renders only when the
    /// trace interleaves more than one server (a multi-server run
    /// concatenates each server's `--trace-out` file).
    pub servers: BTreeMap<u32, ServerSummary>,
}

/// One server's slice of a multi-server run (see [`RunSummary::servers`]).
#[derive(Clone, Debug, Default)]
pub struct ServerSummary {
    /// Events attributed to this server.
    pub events: u64,
    /// `(count, bytes)` over this server's `message` events.
    pub messages: (u64, u64),
    /// Reads served by this server.
    pub reads: u64,
    /// Stale reads among them.
    pub stale_reads: u64,
    /// Write delays committed on this server, milliseconds.
    pub write_delay_ms: Histogram,
    /// Distinct volumes this server's events touched.
    pub volumes: std::collections::BTreeSet<u64>,
}

/// One shard's slice of the transport section (see [`RunSummary::shards`]).
#[derive(Clone, Debug, Default)]
pub struct ShardSummary {
    /// Send-queue depth samples for peers owned by this shard.
    pub queue_depth: Histogram,
    /// Worst send-queue peak for any peer on this shard.
    pub queue_peak: u64,
    /// Latest cumulative overflow drops per client on this shard.
    pub queue_drops: BTreeMap<u64, u64>,
    /// Latest cumulative kernel backpressure per client on this shard.
    pub backpressure: BTreeMap<u64, u64>,
    /// Latest cumulative inbound frame count (from `shard_sample`) —
    /// the shard's share of renewal throughput.
    pub frames_in: u64,
    /// Latest live connection count (from `shard_sample`).
    pub connected: u64,
}

impl RunSummary {
    fn fold(&mut self, ev: &Event) {
        self.events += 1;
        self.span = self.span.max(ev.at);
        let srv = self.servers.entry(ev.server.raw()).or_default();
        srv.events += 1;
        if let Some(v) = ev.volume {
            *self.volume_events.entry(u64::from(v.raw())).or_insert(0) += 1;
            srv.volumes.insert(u64::from(v.raw()));
        }
        match ev.kind {
            EventKind::Message => {
                srv.messages.0 += 1;
                srv.messages.1 += ev.value;
                let name = ev.msg.map_or("?", |m| m.name());
                let e = self.messages.entry(name.to_owned()).or_insert((0, 0));
                e.0 += 1;
                e.1 += ev.value;
            }
            EventKind::Read => {
                self.reads += 1;
                // Simulation `read` events carry staleness in `value`;
                // live-driver ones carry remote-vs-local in `extra` and
                // are never stale (leases guarantee it).
                self.stale_reads += ev.value;
                srv.reads += 1;
                srv.stale_reads += ev.value;
            }
            EventKind::WriteCommitted => {
                self.write_delay_ms.record(ev.value);
                srv.write_delay_ms.record(ev.value);
            }
            EventKind::InvalidationBatch => self.inval_batch.record(ev.value),
            EventKind::SendQueue => {
                self.queue_depth.record(ev.value);
                self.queue_peak = self.queue_peak.max(ev.extra);
                if let Some(shard) = ev.shard {
                    let s = self.shards.entry(shard).or_default();
                    s.queue_depth.record(ev.value);
                    s.queue_peak = s.queue_peak.max(ev.extra);
                }
            }
            EventKind::QueueDrop => {
                let client = u64::from(ev.client.raw());
                self.queue_drops.insert(client, ev.value);
                self.backpressure.insert(client, ev.extra);
                if let Some(shard) = ev.shard {
                    let s = self.shards.entry(shard).or_default();
                    s.queue_drops.insert(client, ev.value);
                    s.backpressure.insert(client, ev.extra);
                }
            }
            EventKind::ShardSample => {
                if let Some(shard) = ev.shard {
                    let s = self.shards.entry(shard).or_default();
                    // Cumulative gauges: the latest sample supersedes.
                    s.frames_in = ev.value;
                    s.connected = ev.extra;
                }
            }
            _ => {}
        }
    }

    /// The `top` busiest volumes as `(volume id, events)`, descending.
    pub fn hottest_volumes(&self, top: usize) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.volume_events.iter().map(|(&k, &n)| (k, n)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(top);
        v
    }
}

/// Parses a JSONL trace into per-run summaries, in file order. Events
/// before the first `{"run":...}` line fall into an unnamed run labelled
/// `"(unlabelled)"` — the live drivers emit no label. Returns the
/// summaries plus the number of unparseable lines skipped.
pub fn summarize(reader: impl BufRead) -> std::io::Result<(Vec<RunSummary>, u64)> {
    let mut runs: Vec<RunSummary> = Vec::new();
    let mut skipped = 0u64;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(&line) {
            Some(TraceLine::Run(label)) => runs.push(RunSummary {
                label,
                ..RunSummary::default()
            }),
            Some(TraceLine::Event(ev)) => {
                if runs.is_empty() {
                    runs.push(RunSummary {
                        label: "(unlabelled)".to_owned(),
                        ..RunSummary::default()
                    });
                }
                runs.last_mut().expect("non-empty").fold(&ev);
            }
            None => skipped += 1,
        }
    }
    Ok((runs, skipped))
}

/// Renders one summary in the `vl report` output format.
pub fn render(s: &RunSummary, top: usize) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "run: {}", s.label);
    let _ = writeln!(
        out,
        "  events: {} over {:.1}s of protocol time",
        s.events,
        s.span.as_secs_f64()
    );
    if !s.messages.is_empty() {
        let _ = writeln!(out, "  message mix:");
        let (mut tc, mut tb) = (0u64, 0u64);
        for (name, &(count, bytes)) in &s.messages {
            let _ = writeln!(out, "    {name:<18} {count:>10} msgs {bytes:>12} bytes");
            tc += count;
            tb += bytes;
        }
        let _ = writeln!(out, "    {:<18} {tc:>10} msgs {tb:>12} bytes", "total");
    }
    let _ = writeln!(out, "  reads: {} ({} stale)", s.reads, s.stale_reads);
    if !s.write_delay_ms.is_empty() {
        let _ = writeln!(
            out,
            "  write delay (ms): {}",
            s.write_delay_ms.summary_line()
        );
    }
    if !s.inval_batch.is_empty() {
        let _ = writeln!(
            out,
            "  invalidation batches: {} mean={:.1}",
            s.inval_batch.summary_line(),
            s.inval_batch.mean()
        );
    }
    if !s.queue_depth.is_empty() {
        let drops: u64 = s.queue_drops.values().sum();
        let bp: u64 = s.backpressure.values().sum();
        let _ = writeln!(
            out,
            "  transport queues: depth {} peak={} dropped={drops} backpressure={bp}",
            s.queue_depth.summary_line(),
            s.queue_peak
        );
    }
    if !s.shards.is_empty() {
        let _ = writeln!(out, "  per-shard:");
        for (shard, ss) in &s.shards {
            let drops: u64 = ss.queue_drops.values().sum();
            let bp: u64 = ss.backpressure.values().sum();
            let _ = writeln!(
                out,
                "    shard {shard}: conns={} frames_in={} queue depth {} \
                 peak={} dropped={drops} backpressure={bp}",
                ss.connected,
                ss.frames_in,
                ss.queue_depth.summary_line(),
                ss.queue_peak
            );
        }
    }
    // Only a genuinely multi-server trace gets the breakdown; a
    // single-server run would just repeat the totals above.
    if s.servers.len() > 1 {
        let _ = writeln!(out, "  per-server:");
        for (id, ss) in &s.servers {
            let _ = write!(
                out,
                "    server {id}: events={} msgs={} ({} bytes) reads={} ({} stale) \
                 volumes={}",
                ss.events,
                ss.messages.0,
                ss.messages.1,
                ss.reads,
                ss.stale_reads,
                ss.volumes.len()
            );
            if ss.write_delay_ms.is_empty() {
                let _ = writeln!(out);
            } else {
                let _ = writeln!(
                    out,
                    " write delay (ms) {}",
                    ss.write_delay_ms.summary_line()
                );
            }
        }
    }
    if !s.volume_events.is_empty() {
        let hot: Vec<String> = s
            .hottest_volumes(top)
            .into_iter()
            .map(|(v, n)| format!("v{v} ({n} events)"))
            .collect();
        let _ = writeln!(out, "  hottest volumes: {}", hot.join(", "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn summarize_groups_by_run_and_counts() {
        let jsonl = concat!(
            "{\"run\":\"Lease(100)\"}\n",
            "{\"at_ms\":5,\"kind\":\"message\",\"server\":0,\"client\":1,\"msg\":\"GET\",\"value\":20}\n",
            "{\"at_ms\":6,\"kind\":\"read\",\"server\":0,\"client\":1,\"object\":3}\n",
            "{\"at_ms\":7,\"kind\":\"read\",\"server\":0,\"client\":1,\"object\":3,\"value\":1}\n",
            "{\"at_ms\":9,\"kind\":\"write_committed\",\"server\":0,\"client\":0,\"volume\":2,\"value\":40}\n",
            "garbage line\n",
            "{\"run\":\"Callback\"}\n",
            "{\"at_ms\":8,\"kind\":\"inval_batch\",\"server\":0,\"client\":1,\"volume\":7,\"value\":3}\n",
        );
        let (runs, skipped) = summarize(Cursor::new(jsonl)).unwrap();
        assert_eq!(skipped, 1);
        assert_eq!(runs.len(), 2);
        let lease = &runs[0];
        assert_eq!(lease.label, "Lease(100)");
        assert_eq!(lease.events, 4);
        assert_eq!(lease.reads, 2);
        assert_eq!(lease.stale_reads, 1);
        assert_eq!(lease.messages["GET"], (1, 20));
        assert_eq!(lease.write_delay_ms.max(), 40);
        assert_eq!(lease.volume_events[&2], 1);
        let cb = &runs[1];
        assert_eq!(cb.inval_batch.count(), 1);
        assert_eq!(cb.hottest_volumes(3), vec![(7, 1)]);
        let text = render(lease, 3);
        assert!(text.contains("run: Lease(100)"));
        assert!(text.contains("reads: 2 (1 stale)"));
    }

    #[test]
    fn transport_queue_events_fold_into_a_section() {
        let jsonl = concat!(
            "{\"at_ms\":1,\"kind\":\"send_queue\",\"server\":0,\"client\":1,\"value\":3,\"extra\":10}\n",
            "{\"at_ms\":1,\"kind\":\"queue_drop\",\"server\":0,\"client\":1,\"value\":2,\"extra\":5}\n",
            // Later sample for the same client: cumulative counters
            // supersede, not add.
            "{\"at_ms\":2,\"kind\":\"queue_drop\",\"server\":0,\"client\":1,\"value\":4,\"extra\":6}\n",
            "{\"at_ms\":2,\"kind\":\"queue_drop\",\"server\":0,\"client\":2,\"value\":1,\"extra\":0}\n",
        );
        let (runs, skipped) = summarize(Cursor::new(jsonl)).unwrap();
        assert_eq!(skipped, 0);
        let run = &runs[0];
        assert_eq!(run.queue_depth.count(), 1);
        assert_eq!(run.queue_peak, 10);
        assert_eq!(run.queue_drops.values().sum::<u64>(), 5);
        assert_eq!(run.backpressure.values().sum::<u64>(), 6);
        let text = render(run, 3);
        assert!(text.contains("transport queues:"), "{text}");
        assert!(text.contains("dropped=5 backpressure=6"), "{text}");
    }

    #[test]
    fn shard_annotated_events_break_down_without_changing_totals() {
        // The same transport events, once with the shard dimension
        // (what a `--reactors 4` server emits) and once without (the
        // single-reactor wrapper). The run-wide totals must be
        // identical — the shard tag only *adds* a breakdown.
        let sharded = concat!(
            "{\"at_ms\":1,\"kind\":\"send_queue\",\"server\":0,\"client\":1,\"shard\":0,\"value\":3,\"extra\":10}\n",
            "{\"at_ms\":1,\"kind\":\"send_queue\",\"server\":0,\"client\":2,\"shard\":1,\"value\":5,\"extra\":7}\n",
            "{\"at_ms\":1,\"kind\":\"queue_drop\",\"server\":0,\"client\":1,\"shard\":0,\"value\":2,\"extra\":5}\n",
            "{\"at_ms\":2,\"kind\":\"queue_drop\",\"server\":0,\"client\":1,\"shard\":0,\"value\":4,\"extra\":6}\n",
            "{\"at_ms\":2,\"kind\":\"shard_sample\",\"server\":0,\"client\":0,\"shard\":0,\"value\":100,\"extra\":25}\n",
            "{\"at_ms\":2,\"kind\":\"shard_sample\",\"server\":0,\"client\":0,\"shard\":1,\"value\":80,\"extra\":24}\n",
        );
        let flat = concat!(
            "{\"at_ms\":1,\"kind\":\"send_queue\",\"server\":0,\"client\":1,\"value\":3,\"extra\":10}\n",
            "{\"at_ms\":1,\"kind\":\"send_queue\",\"server\":0,\"client\":2,\"value\":5,\"extra\":7}\n",
            "{\"at_ms\":1,\"kind\":\"queue_drop\",\"server\":0,\"client\":1,\"value\":2,\"extra\":5}\n",
            "{\"at_ms\":2,\"kind\":\"queue_drop\",\"server\":0,\"client\":1,\"value\":4,\"extra\":6}\n",
        );
        let (srun, _) = summarize(Cursor::new(sharded)).unwrap();
        let (frun, _) = summarize(Cursor::new(flat)).unwrap();
        let (srun, frun) = (&srun[0], &frun[0]);

        // Determinism of the totals: same depth samples, same peak,
        // same superseding-cumulative drop/backpressure counts.
        assert_eq!(srun.queue_depth.count(), frun.queue_depth.count());
        assert_eq!(srun.queue_depth.mean(), frun.queue_depth.mean());
        assert_eq!(srun.queue_peak, frun.queue_peak);
        assert_eq!(
            srun.queue_drops.values().sum::<u64>(),
            frun.queue_drops.values().sum::<u64>()
        );
        assert_eq!(
            srun.backpressure.values().sum::<u64>(),
            frun.backpressure.values().sum::<u64>()
        );

        // The sharded run additionally exposes the breakdown.
        assert_eq!(srun.shards.len(), 2);
        assert_eq!(srun.shards[&0].connected, 25);
        assert_eq!(srun.shards[&0].frames_in, 100);
        assert_eq!(srun.shards[&0].queue_drops.values().sum::<u64>(), 4);
        assert_eq!(srun.shards[&1].queue_depth.count(), 1);
        assert!(frun.shards.is_empty());

        let text = render(srun, 3);
        assert!(text.contains("per-shard:"), "{text}");
        assert!(text.contains("shard 0: conns=25 frames_in=100"), "{text}");
        let flat_text = render(frun, 3);
        assert!(!flat_text.contains("per-shard:"), "{flat_text}");
    }

    #[test]
    fn multi_server_traces_break_down_per_server_without_changing_totals() {
        // Two servers' events interleaved, as a concatenation of each
        // server's --trace-out produces. The server is a dimension:
        // run-wide totals are the sums, and the per-server section
        // appears only because two distinct ids are present.
        let multi = concat!(
            "{\"at_ms\":1,\"kind\":\"message\",\"server\":0,\"client\":1,\"volume\":0,\"msg\":\"VOL_LEASE\",\"value\":10}\n",
            "{\"at_ms\":2,\"kind\":\"message\",\"server\":1,\"client\":1,\"volume\":7,\"msg\":\"VOL_LEASE\",\"value\":30}\n",
            "{\"at_ms\":3,\"kind\":\"read\",\"server\":0,\"client\":1,\"object\":3}\n",
            "{\"at_ms\":4,\"kind\":\"read\",\"server\":1,\"client\":2,\"object\":70,\"value\":1}\n",
            "{\"at_ms\":5,\"kind\":\"write_committed\",\"server\":1,\"client\":0,\"volume\":7,\"value\":40}\n",
        );
        let (runs, skipped) = summarize(Cursor::new(multi)).unwrap();
        assert_eq!(skipped, 0);
        let run = &runs[0];
        assert_eq!(run.events, 5);
        assert_eq!(run.reads, 2);
        assert_eq!(run.stale_reads, 1);
        assert_eq!(run.messages["VOL_LEASE"], (2, 40));
        assert_eq!(run.servers.len(), 2);
        let s0 = &run.servers[&0];
        assert_eq!((s0.events, s0.reads, s0.stale_reads), (2, 1, 0));
        assert_eq!(s0.messages, (1, 10));
        let s1 = &run.servers[&1];
        assert_eq!((s1.events, s1.reads, s1.stale_reads), (3, 1, 1));
        assert_eq!(s1.write_delay_ms.max(), 40);
        assert_eq!(s1.volumes.len(), 1);
        let text = render(run, 3);
        assert!(text.contains("per-server:"), "{text}");
        assert!(text.contains("server 1: events=3"), "{text}");

        // A single-server trace keeps today's output shape.
        let single = "{\"at_ms\":1,\"kind\":\"read\",\"server\":0,\"client\":1}\n";
        let (runs, _) = summarize(Cursor::new(single)).unwrap();
        assert!(!render(&runs[0], 3).contains("per-server:"));
    }

    #[test]
    fn events_before_any_label_get_a_placeholder_run() {
        let jsonl = "{\"at_ms\":1,\"kind\":\"read\",\"server\":0,\"client\":1}\n";
        let (runs, skipped) = summarize(Cursor::new(jsonl)).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].label, "(unlabelled)");
        assert_eq!(runs[0].reads, 1);
    }
}
