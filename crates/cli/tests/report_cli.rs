//! End-to-end exercise of the `vl` observability surface: `gen` a smoke
//! trace, `sim` it under the Delay algorithm with `--trace-out`, then
//! `report` the resulting JSONL and check every advertised section is
//! present and consistent with the protocol's guarantees.

use std::path::PathBuf;
use std::process::Command;

fn vl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_vl"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("vl-report-cli-{}-{name}", std::process::id()))
}

#[test]
fn sim_trace_out_feeds_vl_report() {
    let trace_path = tmp("smoke.vltrace");
    let jsonl_path = tmp("delay.jsonl");

    let gen = vl()
        .args(["gen", "--out"])
        .arg(&trace_path)
        .args(["--preset", "smoke"])
        .output()
        .expect("vl gen runs");
    assert!(
        gen.status.success(),
        "{}",
        String::from_utf8_lossy(&gen.stderr)
    );

    let (t_secs, tv_secs) = (1000u64, 10u64);
    let sim = vl()
        .args(["sim", "--trace"])
        .arg(&trace_path)
        .args(["--protocol", "delay", "--t", &t_secs.to_string()])
        .args(["--tv", &tv_secs.to_string(), "--trace-out"])
        .arg(&jsonl_path)
        .output()
        .expect("vl sim runs");
    assert!(
        sim.status.success(),
        "{}",
        String::from_utf8_lossy(&sim.stderr)
    );
    let sim_out = String::from_utf8_lossy(&sim.stdout);
    assert!(sim_out.contains("protocol trace written"), "{sim_out}");

    let report = vl()
        .args(["report", "--trace"])
        .arg(&jsonl_path)
        .output()
        .expect("vl report runs");
    assert!(
        report.status.success(),
        "{}",
        String::from_utf8_lossy(&report.stderr)
    );
    let out = String::from_utf8_lossy(&report.stdout);
    for needle in [
        "run: Delay(10, 1000, ∞)",
        "message mix:",
        "REQ_VOL_LEASE",
        "VOL_LEASE",
        "reads:",
        "write delay (ms):",
        "hottest volumes:",
    ] {
        assert!(out.contains(needle), "missing {needle:?} in:\n{out}");
    }
    // Leases never serve stale data — the report must agree.
    assert!(out.contains("(0 stale)"), "{out}");

    // The trace's own write-delay samples must respect the paper's
    // min(t, t_v) bound that `vl report` summarizes.
    let jsonl = std::fs::read_to_string(&jsonl_path).expect("trace readable");
    let bound_ms = t_secs.min(tv_secs) * 1000;
    let mut writes = 0u64;
    for line in jsonl.lines() {
        if let Some(vl_metrics::trace::TraceLine::Event(ev)) = vl_metrics::trace::parse_line(line) {
            if ev.kind == vl_metrics::EventKind::WriteCommitted {
                writes += 1;
                assert!(
                    ev.value <= bound_ms,
                    "write delay {}ms exceeds min(t, t_v) = {bound_ms}ms",
                    ev.value
                );
            }
        }
    }
    assert!(writes > 0, "smoke trace must commit writes");

    let _ = std::fs::remove_file(&trace_path);
    let _ = std::fs::remove_file(&jsonl_path);
}

#[test]
fn report_on_missing_file_fails_cleanly() {
    let out = vl()
        .args(["report", "--trace", "/nonexistent/definitely-missing.jsonl"])
        .output()
        .expect("vl runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot open"));
}
