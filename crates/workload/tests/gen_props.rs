//! Randomized (seeded, deterministic) tests for the trace generator and
//! write model: structural invariants under randomized configurations.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vl_workload::{TraceGenerator, WorkloadConfig};

fn arb_config(rng: &mut StdRng) -> WorkloadConfig {
    WorkloadConfig {
        seed: rng.gen(),
        clients: rng.gen_range(1u32..6),
        servers: rng.gen_range(1u32..12),
        volumes_per_server: rng.gen_range(1u32..4),
        objects: rng.gen_range(1u64..400),
        target_reads: rng.gen_range(10u64..2_000),
        days: 2.0,
        server_zipf_theta: rng.gen_range(0.0..1.4),
        revisit_prob: rng.gen_range(0.0..1.0),
        ..WorkloadConfig::smoke()
    }
}

/// Every generated trace is structurally sound: time-ordered events,
/// all object references valid, counts self-consistent, every volume
/// non-empty, span within the configured days.
#[test]
fn generated_traces_are_well_formed() {
    let mut rng = StdRng::seed_from_u64(0x9e4);
    for case in 0..48 {
        let cfg = arb_config(&mut rng);
        let trace = TraceGenerator::new(cfg.clone()).generate();
        let u = trace.universe();
        assert_eq!(u.object_count() as u64, cfg.objects, "case {case}");
        assert_eq!(
            u.volume_count() as u64,
            u64::from(cfg.servers) * u64::from(cfg.volumes_per_server),
            "case {case}"
        );
        assert!(
            trace.events().windows(2).all(|w| w[0].at() <= w[1].at()),
            "case {case}"
        );
        for e in trace.events() {
            assert!(
                (e.object().raw() as usize) < u.object_count(),
                "case {case}"
            );
        }
        assert_eq!(
            trace.read_count() + trace.write_count(),
            trace.events().len() as u64,
            "case {case}"
        );
        // Every volume is seeded whenever objects suffice; with scarcer
        // objects, empty shards are legal and the generator skips them.
        if cfg.objects >= u64::from(cfg.servers) * u64::from(cfg.volumes_per_server) {
            for v in u.volumes() {
                assert!(!v.objects.is_empty(), "case {case}: volume {} empty", v.id);
            }
        }
        assert!(
            trace.span().as_secs_f64() <= cfg.days * 86_400.0 + 1.0,
            "case {case}"
        );
    }
}

/// Generation is a pure function of the config.
#[test]
fn generation_is_deterministic() {
    let mut rng = StdRng::seed_from_u64(0xde7);
    for _ in 0..16 {
        let cfg = arb_config(&mut rng);
        let a = TraceGenerator::new(cfg.clone()).generate();
        let b = TraceGenerator::new(cfg).generate();
        assert_eq!(a.events(), b.events());
    }
}

/// Resharding preserves everything except the volume partition, and
/// the resharded trace is still well-formed.
#[test]
fn reshard_preserves_structure() {
    let mut rng = StdRng::seed_from_u64(0x5a4d);
    for case in 0..32 {
        let cfg = arb_config(&mut rng);
        let k = rng.gen_range(1u32..6);
        let trace = TraceGenerator::new(cfg).generate();
        let sharded = trace.with_resharded_volumes(k);
        assert_eq!(sharded.read_count(), trace.read_count(), "case {case}");
        assert_eq!(sharded.write_count(), trace.write_count(), "case {case}");
        assert_eq!(
            sharded.universe().object_count(),
            trace.universe().object_count(),
            "case {case}"
        );
        assert_eq!(
            sharded.universe().server_count(),
            trace.universe().server_count(),
            "case {case}"
        );
        for (a, b) in trace
            .universe()
            .objects()
            .iter()
            .zip(sharded.universe().objects())
        {
            assert_eq!(a.server, b.server, "case {case}");
            assert_eq!(a.size_bytes, b.size_bytes, "case {case}");
            // The shard's volume must live on the same server.
            assert_eq!(
                sharded.universe().volume(b.volume).server,
                a.server,
                "case {case}"
            );
        }
    }
}

/// Per-server read counts are invariant under resharding (volume
/// structure changed, placement did not).
#[test]
fn reshard_preserves_server_popularity() {
    let mut rng = StdRng::seed_from_u64(0x707);
    for case in 0..16 {
        let cfg = arb_config(&mut rng);
        let k = rng.gen_range(1u32..6);
        let trace = TraceGenerator::new(cfg).generate();
        let sharded = trace.with_resharded_volumes(k);
        assert_eq!(
            trace.reads_per_server(),
            sharded.reads_per_server(),
            "case {case}"
        );
    }
}
