//! Property tests for the trace generator and write model: structural
//! invariants under randomized configurations.

use proptest::prelude::*;
use vl_workload::{TraceGenerator, WorkloadConfig};

fn arb_config() -> impl Strategy<Value = WorkloadConfig> {
    (
        any::<u64>(),        // seed
        1u32..6,             // clients
        1u32..12,            // servers
        1u32..4,             // volumes per server
        1u64..400,           // objects
        10u64..2_000,        // target reads
        0.0f64..1.0,         // revisit prob
        0.0f64..1.4,         // server zipf
    )
        .prop_map(
            |(seed, clients, servers, vps, objects, reads, revisit, theta)| WorkloadConfig {
                seed,
                clients,
                servers,
                volumes_per_server: vps,
                objects,
                target_reads: reads,
                days: 2.0,
                server_zipf_theta: theta,
                revisit_prob: revisit,
                ..WorkloadConfig::smoke()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generated trace is structurally sound: time-ordered events,
    /// all object references valid, counts self-consistent, every volume
    /// non-empty, span within the configured days.
    #[test]
    fn generated_traces_are_well_formed(cfg in arb_config()) {
        let trace = TraceGenerator::new(cfg.clone()).generate();
        let u = trace.universe();
        prop_assert_eq!(u.object_count() as u64, cfg.objects);
        prop_assert_eq!(
            u.volume_count() as u64,
            u64::from(cfg.servers) * u64::from(cfg.volumes_per_server)
        );
        prop_assert!(trace
            .events()
            .windows(2)
            .all(|w| w[0].at() <= w[1].at()));
        for e in trace.events() {
            prop_assert!((e.object().raw() as usize) < u.object_count());
        }
        prop_assert_eq!(
            trace.read_count() + trace.write_count(),
            trace.events().len() as u64
        );
        // Every volume is seeded whenever objects suffice; with scarcer
        // objects, empty shards are legal and the generator skips them.
        if cfg.objects >= u64::from(cfg.servers) * u64::from(cfg.volumes_per_server) {
            for v in u.volumes() {
                prop_assert!(!v.objects.is_empty(), "volume {} empty", v.id);
            }
        }
        prop_assert!(trace.span().as_secs_f64() <= cfg.days * 86_400.0 + 1.0);
    }

    /// Generation is a pure function of the config.
    #[test]
    fn generation_is_deterministic(cfg in arb_config()) {
        let a = TraceGenerator::new(cfg.clone()).generate();
        let b = TraceGenerator::new(cfg).generate();
        prop_assert_eq!(a.events(), b.events());
    }

    /// Resharding preserves everything except the volume partition, and
    /// the resharded trace is still well-formed.
    #[test]
    fn reshard_preserves_structure(cfg in arb_config(), k in 1u32..6) {
        let trace = TraceGenerator::new(cfg).generate();
        let sharded = trace.with_resharded_volumes(k);
        prop_assert_eq!(sharded.read_count(), trace.read_count());
        prop_assert_eq!(sharded.write_count(), trace.write_count());
        prop_assert_eq!(
            sharded.universe().object_count(),
            trace.universe().object_count()
        );
        prop_assert_eq!(
            sharded.universe().server_count(),
            trace.universe().server_count()
        );
        for (a, b) in trace
            .universe()
            .objects()
            .iter()
            .zip(sharded.universe().objects())
        {
            prop_assert_eq!(a.server, b.server);
            prop_assert_eq!(a.size_bytes, b.size_bytes);
            // The shard's volume must live on the same server.
            prop_assert_eq!(
                sharded.universe().volume(b.volume).server,
                a.server
            );
        }
    }

    /// Per-server read counts are invariant under resharding (volume
    /// structure changed, placement did not).
    #[test]
    fn reshard_preserves_server_popularity(cfg in arb_config(), k in 1u32..6) {
        let trace = TraceGenerator::new(cfg).generate();
        let sharded = trace.with_resharded_volumes(k);
        prop_assert_eq!(trace.reads_per_server(), sharded.reads_per_server());
    }
}
