//! The synthetic write model of §4.2.
//!
//! Both web-write studies the paper cites (Bestavros; Gwertzman & Seltzer)
//! found that few files change rapidly and that globally popular files
//! change *less* than others. The paper's model, reproduced here:
//!
//! * the **10% most-read** files write at λ = 0.005/day;
//! * of the remaining files, **3% of all files** are *very mutable*
//!   (λ = 0.2/day), **10% of all files** are *mutable* (λ = 0.05/day), and
//!   the remaining **77%** write at λ = 0.02/day;
//! * write arrivals are Poisson.
//!
//! The *bursty* variant (Figure 9) additionally co-writes `k ~ Exp(mean
//! 10)` other objects from the same volume at the instant of every write.

use crate::dist::{exponential, poisson};
use crate::{TraceEvent, Universe};
use rand::Rng;
use vl_types::{ObjectId, Timestamp};

/// An object's write-rate class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MutabilityClass {
    /// Top-decile by reads: λ = 0.005 writes/day.
    Popular,
    /// 3% of all files: λ = 0.2 writes/day (>20%/day chance of change).
    VeryMutable,
    /// 10% of all files: λ = 0.05 writes/day (>5%/day chance of change).
    Mutable,
    /// The remaining 77%: λ = 0.02 writes/day.
    Slow,
}

impl MutabilityClass {
    /// Expected writes per day for this class under the default config.
    pub fn default_rate(self) -> f64 {
        match self {
            MutabilityClass::Popular => 0.005,
            MutabilityClass::VeryMutable => 0.2,
            MutabilityClass::Mutable => 0.05,
            MutabilityClass::Slow => 0.02,
        }
    }
}

/// Tunable parameters of the write model. [`WriteModelConfig::paper`]
/// gives the values from §4.2.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WriteModelConfig {
    /// Fraction of files (by read rank) classed [`MutabilityClass::Popular`].
    pub popular_fraction: f64,
    /// Fraction of *all* files classed [`MutabilityClass::VeryMutable`].
    pub very_mutable_fraction: f64,
    /// Fraction of *all* files classed [`MutabilityClass::Mutable`].
    pub mutable_fraction: f64,
    /// Writes/day for each class, in the order popular, very-mutable,
    /// mutable, slow.
    pub rates_per_day: [f64; 4],
    /// If set, every write additionally modifies `k ~ Exp(mean)` objects
    /// from the same volume at the same instant (Figure 9's workload).
    pub burst_mean: Option<f64>,
}

impl WriteModelConfig {
    /// The paper's §4.2 parameters, non-bursty.
    pub fn paper() -> WriteModelConfig {
        WriteModelConfig {
            popular_fraction: 0.10,
            very_mutable_fraction: 0.03,
            mutable_fraction: 0.10,
            rates_per_day: [0.005, 0.2, 0.05, 0.02],
            burst_mean: None,
        }
    }

    /// The paper's Figure 9 "bursty write" variant (mean burst 10).
    pub fn paper_bursty() -> WriteModelConfig {
        WriteModelConfig {
            burst_mean: Some(10.0),
            ..WriteModelConfig::paper()
        }
    }

    /// Rate for `class` under this config.
    pub fn rate(&self, class: MutabilityClass) -> f64 {
        match class {
            MutabilityClass::Popular => self.rates_per_day[0],
            MutabilityClass::VeryMutable => self.rates_per_day[1],
            MutabilityClass::Mutable => self.rates_per_day[2],
            MutabilityClass::Slow => self.rates_per_day[3],
        }
    }
}

impl Default for WriteModelConfig {
    fn default() -> Self {
        WriteModelConfig::paper()
    }
}

/// Per-object mutability assignment plus write-event generation.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WriteModel {
    classes: Vec<MutabilityClass>,
    config: WriteModelConfig,
}

impl WriteModel {
    /// Assigns classes given objects ranked most-read-first.
    ///
    /// `rank_order` must contain every object exactly once. The top
    /// `popular_fraction` become [`MutabilityClass::Popular`]; the rest
    /// are randomly partitioned into the other classes.
    ///
    /// # Panics
    ///
    /// Panics if `rank_order` has duplicate or out-of-range objects.
    pub fn assign<R: Rng + ?Sized>(
        rank_order: &[ObjectId],
        config: WriteModelConfig,
        rng: &mut R,
    ) -> WriteModel {
        let n = rank_order.len();
        let mut classes = vec![None; n];
        let n_popular = (n as f64 * config.popular_fraction).round() as usize;
        let n_very = (n as f64 * config.very_mutable_fraction).round() as usize;
        let n_mutable = (n as f64 * config.mutable_fraction).round() as usize;

        for &obj in rank_order.iter().take(n_popular) {
            let slot = &mut classes[obj.raw() as usize];
            assert!(slot.is_none(), "duplicate object {obj} in rank order");
            *slot = Some(MutabilityClass::Popular);
        }
        // Randomly shuffle the remainder, then slice into classes.
        let mut rest: Vec<ObjectId> = rank_order.iter().skip(n_popular).copied().collect();
        for i in (1..rest.len()).rev() {
            rest.swap(i, rng.gen_range(0..=i));
        }
        for (i, &obj) in rest.iter().enumerate() {
            let class = if i < n_very {
                MutabilityClass::VeryMutable
            } else if i < n_very + n_mutable {
                MutabilityClass::Mutable
            } else {
                MutabilityClass::Slow
            };
            let slot = &mut classes[obj.raw() as usize];
            assert!(slot.is_none(), "duplicate object {obj} in rank order");
            *slot = Some(class);
        }
        WriteModel {
            classes: classes
                .into_iter()
                .map(|c| c.expect("rank order must cover every object"))
                .collect(),
            config,
        }
    }

    /// The class assigned to `object`.
    ///
    /// # Panics
    ///
    /// Panics if `object` is out of range.
    pub fn class_of(&self, object: ObjectId) -> MutabilityClass {
        self.classes[object.raw() as usize]
    }

    /// Number of objects in `class`.
    pub fn count_in(&self, class: MutabilityClass) -> usize {
        self.classes.iter().filter(|&&c| c == class).count()
    }

    /// Generates Poisson write events for every object over `days`,
    /// uniformly spread across the span. With `burst_mean` set, each base
    /// write co-writes `k` volume-mates at the same instant.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        universe: &Universe,
        days: f64,
        rng: &mut R,
    ) -> Vec<TraceEvent> {
        let span_ms = (days * 86_400_000.0) as u64;
        let mut events = Vec::new();
        for meta in universe.objects() {
            let rate = self.config.rate(self.class_of(meta.id));
            let count = poisson(rng, rate * days);
            for _ in 0..count {
                let at = Timestamp::from_millis(rng.gen_range(0..span_ms.max(1)));
                events.push(TraceEvent::Write {
                    at,
                    object: meta.id,
                });
                if let Some(mean) = self.config.burst_mean {
                    let k = exponential(rng, mean).round() as usize;
                    let mates = &universe.volume(meta.volume).objects;
                    if mates.len() > 1 {
                        for _ in 0..k {
                            let other = mates[rng.gen_range(0..mates.len())];
                            if other != meta.id {
                                events.push(TraceEvent::Write { at, object: other });
                            }
                        }
                    }
                }
            }
        }
        events
    }

    /// Expected total writes over `days` (mean of the Poisson mixture),
    /// excluding burst co-writes. Used by calibration tests.
    pub fn expected_writes(&self, days: f64) -> f64 {
        self.classes
            .iter()
            .map(|&c| self.config.rate(c) * days)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UniverseBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vl_types::ServerId;

    fn universe(objects: usize) -> Universe {
        let mut b = UniverseBuilder::new();
        let v = b.add_volume(ServerId(0));
        for _ in 0..objects {
            b.add_object(v, 100);
        }
        b.build()
    }

    fn rank_order(n: usize) -> Vec<ObjectId> {
        (0..n as u64).map(ObjectId).collect()
    }

    #[test]
    fn class_fractions_match_config() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 1000;
        let m = WriteModel::assign(&rank_order(n), WriteModelConfig::paper(), &mut rng);
        assert_eq!(m.count_in(MutabilityClass::Popular), 100);
        assert_eq!(m.count_in(MutabilityClass::VeryMutable), 30);
        assert_eq!(m.count_in(MutabilityClass::Mutable), 100);
        assert_eq!(m.count_in(MutabilityClass::Slow), 770);
    }

    #[test]
    fn top_ranked_objects_are_popular_class() {
        let mut rng = StdRng::seed_from_u64(2);
        let order = rank_order(100);
        let m = WriteModel::assign(&order, WriteModelConfig::paper(), &mut rng);
        for &obj in order.iter().take(10) {
            assert_eq!(m.class_of(obj), MutabilityClass::Popular);
        }
    }

    #[test]
    fn generated_write_count_tracks_expectation() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 2000;
        let u = universe(n);
        let m = WriteModel::assign(&rank_order(n), WriteModelConfig::paper(), &mut rng);
        let days = 100.0;
        let events = m.generate(&u, days, &mut rng);
        let expected = m.expected_writes(days); // ≈ 2000 × 0.0269 × 100 = 5380
        let got = events.len() as f64;
        assert!(
            (got - expected).abs() < expected * 0.1,
            "got {got}, expected ≈ {expected}"
        );
        // All inside the span.
        let span = Timestamp::from_millis((days * 86_400_000.0) as u64);
        assert!(events.iter().all(|e| e.at() < span));
    }

    #[test]
    fn bursty_model_amplifies_writes() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 500;
        let u = universe(n);
        let base = WriteModel::assign(&rank_order(n), WriteModelConfig::paper(), &mut rng);
        let mut rng2 = StdRng::seed_from_u64(5);
        let bursty =
            WriteModel::assign(&rank_order(n), WriteModelConfig::paper_bursty(), &mut rng2);
        let days = 200.0;
        let mut rng_a = StdRng::seed_from_u64(6);
        let mut rng_b = StdRng::seed_from_u64(6);
        let base_events = base.generate(&u, days, &mut rng_a);
        let bursty_events = bursty.generate(&u, days, &mut rng_b);
        // Mean burst of 10 ⇒ roughly an order of magnitude more writes.
        assert!(
            bursty_events.len() as f64 > base_events.len() as f64 * 4.0,
            "bursty {} vs base {}",
            bursty_events.len(),
            base_events.len()
        );
    }

    #[test]
    fn burst_co_writes_share_the_instant_and_volume() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 50;
        let u = universe(n);
        let m = WriteModel::assign(&rank_order(n), WriteModelConfig::paper_bursty(), &mut rng);
        let events = m.generate(&u, 365.0, &mut rng);
        // Single volume ⇒ trivially same volume; check instants cluster.
        use std::collections::HashMap;
        let mut by_instant: HashMap<u64, usize> = HashMap::new();
        for e in &events {
            *by_instant.entry(e.at().as_millis()).or_insert(0) += 1;
        }
        assert!(
            by_instant.values().any(|&c| c > 1),
            "expected at least one co-write burst"
        );
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_rank_entries_panic() {
        let mut rng = StdRng::seed_from_u64(8);
        let order = vec![ObjectId(0), ObjectId(0)];
        WriteModel::assign(&order, WriteModelConfig::paper(), &mut rng);
    }

    #[test]
    fn default_rates_match_paper() {
        assert_eq!(MutabilityClass::Popular.default_rate(), 0.005);
        assert_eq!(MutabilityClass::VeryMutable.default_rate(), 0.2);
        assert_eq!(MutabilityClass::Mutable.default_rate(), 0.05);
        assert_eq!(MutabilityClass::Slow.default_rate(), 0.02);
    }
}
