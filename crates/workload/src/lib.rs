//! Workload engine: traces, generators, and write models.
//!
//! The paper's evaluation replays HTTP read traces from Boston University
//! (Cunha et al., 1995) and synthesizes writes from published web
//! mutability studies (§4.2). The original traces are not redistributable,
//! so this crate provides both:
//!
//! * [`TraceGenerator`] — a **calibrated synthetic generator** that
//!   reproduces the aggregate properties the paper's results depend on
//!   (33 clients, 1000 Zipf-popular servers/volumes, 68,665 files, ~1.03M
//!   reads over ~120 days, per-volume read bursts with minutes-scale
//!   think times), and
//! * [`bu::parse_reader`] — a parser for the BU trace format, for users
//!   who have the real files.
//!
//! Writes are synthesized exactly as in §4.2: the 10% most-read files get
//! Poisson writes at 0.005/day; the rest are split 3% *very mutable*
//! (0.2/day), 10% *mutable* (0.05/day), 77% slow (0.02/day). A bursty
//! variant co-writes `k ~ Exp(mean 10)` volume-mates per write (Figure 9).
//!
//! # Examples
//!
//! ```
//! use vl_workload::{TraceGenerator, WorkloadConfig};
//!
//! let trace = TraceGenerator::new(WorkloadConfig::smoke()).generate();
//! assert!(trace.read_count() > 0);
//! assert!(trace.write_count() > 0);
//! // Events are time-ordered.
//! assert!(trace.events().windows(2).all(|w| w[0].at() <= w[1].at()));
//! ```
//!
//! # Layering
//!
//! Pure layer (DESIGN.md §7): generation is a deterministic function
//! of a [`WorkloadConfig`] (seed included), and a generated [`Trace`]
//! is plain data shared read-only across the parallel sweep workers.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bu;
pub mod dist;
mod generator;
pub mod io;
mod trace;
mod universe;
mod writes;

pub use generator::{TraceGenerator, WorkloadConfig, WorkloadPreset};
pub use trace::{Trace, TraceEvent};
pub use universe::{ObjectMeta, Universe, UniverseBuilder, VolumeMeta};
pub use writes::{MutabilityClass, WriteModel, WriteModelConfig};
