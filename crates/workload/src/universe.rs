//! The static object/volume/server topology a trace runs against.

use vl_types::{ObjectId, ServerId, VolumeId};

/// Immutable description of one object: where it lives and how big it is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObjectMeta {
    /// The object's identifier; equal to its index in [`Universe::objects`].
    pub id: ObjectId,
    /// The volume the object belongs to.
    pub volume: VolumeId,
    /// The server hosting the volume.
    pub server: ServerId,
    /// Payload size in bytes (used for byte-traffic accounting).
    pub size_bytes: u64,
}

/// Immutable description of one volume.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VolumeMeta {
    /// The volume's identifier; equal to its index in [`Universe::volumes`].
    pub id: VolumeId,
    /// The hosting server. In the paper's evaluation volumes and servers
    /// are 1:1 ("files … are grouped into 1000 volumes corresponding to
    /// the 1000 servers"), but the types allow many volumes per server.
    pub server: ServerId,
    /// Objects in this volume, ascending.
    pub objects: Vec<ObjectId>,
}

/// The complete static topology: objects grouped into volumes hosted on
/// servers. Identifiers are dense indices, so lookups are O(1) vector
/// accesses on the simulation hot path.
///
/// # Examples
///
/// ```
/// use vl_workload::UniverseBuilder;
/// use vl_types::{ServerId, VolumeId};
///
/// let mut b = UniverseBuilder::new();
/// let v = b.add_volume(ServerId(0));
/// let o = b.add_object(v, 1024);
/// let universe = b.build();
/// assert_eq!(universe.object(o).volume, v);
/// assert_eq!(universe.volume(v).objects, vec![o]);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Universe {
    objects: Vec<ObjectMeta>,
    volumes: Vec<VolumeMeta>,
    server_count: u32,
}

impl Universe {
    /// Metadata for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this universe.
    pub fn object(&self, id: ObjectId) -> &ObjectMeta {
        &self.objects[id.raw() as usize]
    }

    /// Metadata for volume `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this universe.
    pub fn volume(&self, id: VolumeId) -> &VolumeMeta {
        &self.volumes[id.raw() as usize]
    }

    /// All objects, indexed by [`ObjectId`].
    pub fn objects(&self) -> &[ObjectMeta] {
        &self.objects
    }

    /// All volumes, indexed by [`VolumeId`].
    pub fn volumes(&self) -> &[VolumeMeta] {
        &self.volumes
    }

    /// Number of objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Number of volumes.
    pub fn volume_count(&self) -> usize {
        self.volumes.len()
    }

    /// Number of distinct servers (max server id + 1).
    pub fn server_count(&self) -> usize {
        self.server_count as usize
    }

    /// The server hosting `object` — a hot-path shorthand.
    pub fn server_of(&self, object: ObjectId) -> ServerId {
        self.object(object).server
    }

    /// The volume containing `object` — a hot-path shorthand.
    pub fn volume_of(&self, object: ObjectId) -> VolumeId {
        self.object(object).volume
    }

    /// Rebuilds this universe with each server's objects sharded across
    /// `volumes_per_server` volumes (by object id, round-robin). Object
    /// ids, sizes, and server placement are unchanged, so an existing
    /// trace replays against the resharded universe — this isolates the
    /// *grouping policy* when experimenting with volume granularity
    /// (the future work of §4.2).
    ///
    /// # Panics
    ///
    /// Panics if `volumes_per_server` is zero.
    pub fn reshard(&self, volumes_per_server: u32) -> Universe {
        assert!(
            volumes_per_server > 0,
            "need at least one volume per server"
        );
        let mut builder = UniverseBuilder::new();
        let servers = self.server_count() as u32;
        for s in 0..servers {
            for _ in 0..volumes_per_server {
                builder.add_volume(ServerId(s));
            }
        }
        for meta in &self.objects {
            let shard = (meta.id.raw() % u64::from(volumes_per_server)) as u32;
            let volume = VolumeId(meta.server.raw() * volumes_per_server + shard);
            let id = builder.add_object(volume, meta.size_bytes);
            debug_assert_eq!(id, meta.id, "resharding must preserve object ids");
        }
        builder.build()
    }
}

/// Incrementally builds a [`Universe`].
#[derive(Clone, Debug, Default)]
pub struct UniverseBuilder {
    objects: Vec<ObjectMeta>,
    volumes: Vec<VolumeMeta>,
    server_count: u32,
}

impl UniverseBuilder {
    /// Creates an empty builder.
    pub fn new() -> UniverseBuilder {
        UniverseBuilder::default()
    }

    /// Adds a volume on `server` and returns its id.
    pub fn add_volume(&mut self, server: ServerId) -> VolumeId {
        let id = VolumeId(self.volumes.len() as u32);
        self.volumes.push(VolumeMeta {
            id,
            server,
            objects: Vec::new(),
        });
        self.server_count = self.server_count.max(server.raw() + 1);
        id
    }

    /// Adds an object of `size_bytes` to `volume` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `volume` was not created by this builder.
    pub fn add_object(&mut self, volume: VolumeId, size_bytes: u64) -> ObjectId {
        let id = ObjectId(self.objects.len() as u64);
        let vol = &mut self.volumes[volume.raw() as usize];
        vol.objects.push(id);
        self.objects.push(ObjectMeta {
            id,
            volume,
            server: vol.server,
            size_bytes,
        });
        id
    }

    /// Number of volumes added so far.
    pub fn volume_count(&self) -> usize {
        self.volumes.len()
    }

    /// Finalizes the universe.
    pub fn build(self) -> Universe {
        Universe {
            objects: self.objects,
            volumes: self.volumes,
            server_count: self.server_count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_dense_ids() {
        let mut b = UniverseBuilder::new();
        let v0 = b.add_volume(ServerId(0));
        let v1 = b.add_volume(ServerId(1));
        let o0 = b.add_object(v0, 10);
        let o1 = b.add_object(v1, 20);
        let o2 = b.add_object(v0, 30);
        assert_eq!((v0, v1), (VolumeId(0), VolumeId(1)));
        assert_eq!((o0, o1, o2), (ObjectId(0), ObjectId(1), ObjectId(2)));

        let u = b.build();
        assert_eq!(u.object_count(), 3);
        assert_eq!(u.volume_count(), 2);
        assert_eq!(u.server_count(), 2);
        assert_eq!(u.volume(v0).objects, vec![o0, o2]);
        assert_eq!(u.object(o1).server, ServerId(1));
        assert_eq!(u.server_of(o2), ServerId(0));
        assert_eq!(u.volume_of(o1), v1);
        assert_eq!(u.object(o2).size_bytes, 30);
    }

    #[test]
    fn server_count_tracks_max_id() {
        let mut b = UniverseBuilder::new();
        b.add_volume(ServerId(7));
        let u = b.build();
        assert_eq!(u.server_count(), 8);
    }

    #[test]
    fn reshard_preserves_objects_and_servers() {
        let mut b = UniverseBuilder::new();
        let v0 = b.add_volume(ServerId(0));
        let v1 = b.add_volume(ServerId(1));
        for i in 0..6 {
            b.add_object(if i % 2 == 0 { v0 } else { v1 }, 100 + i);
        }
        let u = b.build();
        let sharded = u.reshard(3);
        assert_eq!(sharded.object_count(), u.object_count());
        assert_eq!(sharded.server_count(), u.server_count());
        assert_eq!(sharded.volume_count(), 6, "2 servers × 3 shards");
        for (a, b) in u.objects().iter().zip(sharded.objects()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.server, b.server, "placement unchanged");
            assert_eq!(a.size_bytes, b.size_bytes);
        }
        // Shards actually split a server's objects.
        let vols: std::collections::BTreeSet<_> = sharded
            .objects()
            .iter()
            .filter(|o| o.server == ServerId(0))
            .map(|o| o.volume)
            .collect();
        assert!(vols.len() > 1, "server 0's objects span shards: {vols:?}");
    }

    #[test]
    fn reshard_to_one_is_identity_modulo_volume_ids() {
        let mut b = UniverseBuilder::new();
        let v = b.add_volume(ServerId(0));
        b.add_object(v, 10);
        let u = b.build();
        let r = u.reshard(1);
        assert_eq!(r.volume_count(), 1);
        assert_eq!(r.volume_of(ObjectId(0)), VolumeId(0));
    }

    #[test]
    #[should_panic(expected = "at least one volume")]
    fn reshard_zero_panics() {
        let mut b = UniverseBuilder::new();
        b.add_volume(ServerId(0));
        b.build().reshard(0);
    }

    #[test]
    #[should_panic]
    fn unknown_volume_panics() {
        let mut b = UniverseBuilder::new();
        b.add_object(VolumeId(3), 10);
    }
}
