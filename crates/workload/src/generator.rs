//! The calibrated synthetic trace generator.
//!
//! Substitutes for the Boston University Mosaic traces (§4.2), matching
//! the aggregate properties the paper's conclusions rest on — see
//! `DESIGN.md` §4 for the substitution argument. Generation is a pure
//! function of [`WorkloadConfig`] (including its seed).

use crate::dist::{exponential, log_normal, Zipf};
use crate::writes::{WriteModel, WriteModelConfig};
use crate::{Trace, TraceEvent, Universe, UniverseBuilder};
use rand::Rng;
use std::collections::HashMap;
use vl_types::{ClientId, ObjectId, ServerId, Timestamp, VolumeId};

/// Scale presets for experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WorkloadPreset {
    /// Tiny: seconds to simulate; used by unit/integration tests.
    Smoke,
    /// Mid-size: the default for Criterion benches (~100K reads).
    Medium,
    /// Full paper scale: 33 clients, 1000 servers, 68,665 files,
    /// ~1.03M reads over 120 days.
    Paper,
}

/// Complete, serializable generator configuration.
///
/// # Examples
///
/// ```
/// use vl_workload::{TraceGenerator, WorkloadConfig};
///
/// let mut cfg = WorkloadConfig::smoke();
/// cfg.seed = 7;
/// let a = TraceGenerator::new(cfg.clone()).generate();
/// let b = TraceGenerator::new(cfg).generate();
/// assert_eq!(a.events(), b.events()); // same seed ⇒ same trace
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadConfig {
    /// Master seed; every random stream derives from it.
    pub seed: u64,
    /// Number of cache clients (the BU trace had 33 workstations).
    pub clients: u32,
    /// Number of servers.
    pub servers: u32,
    /// Volumes hosted per server. The paper uses 1 (volume = server,
    /// §4.2) and leaves "more sophisticated grouping as future work";
    /// values > 1 shard each server's objects across finer volumes,
    /// which trades weaker renewal amortization for smaller
    /// per-volume blast radius.
    pub volumes_per_server: u32,
    /// Total distinct objects.
    pub objects: u64,
    /// Target number of read events (approximate; generation stops when
    /// each client exhausts its quota or the span ends).
    pub target_reads: u64,
    /// Simulated span in days.
    pub days: f64,
    /// Zipf exponent for server (volume) popularity.
    pub server_zipf_theta: f64,
    /// Zipf exponent for object popularity within a volume (0.986 is the
    /// classic web-trace value from Cunha et al.).
    pub object_zipf_theta: f64,
    /// Mean objects read per session burst (spatial locality in a volume).
    pub mean_burst_len: f64,
    /// Mean seconds between reads inside a burst.
    pub mean_intra_burst_gap_secs: f64,
    /// Probability that a session *revisits* a previously read page —
    /// replaying an earlier burst's exact object set, as a browser
    /// reload refetches a page and its embedded objects. Web client
    /// traces are dominated by such revisits; they are the re-reads that
    /// long object leases amortize.
    pub revisit_prob: f64,
    /// Median object size in bytes (log-normal).
    pub size_median_bytes: f64,
    /// Log-space sigma for object sizes.
    pub size_sigma: f64,
    /// The write model parameters.
    pub writes: WriteModelConfig,
}

impl WorkloadConfig {
    /// Returns the configuration for `preset`.
    pub fn preset(preset: WorkloadPreset) -> WorkloadConfig {
        match preset {
            // Preset scales keep the paper's write:read ratio (~20%:
            // 209K writes per 1.03M reads) so the Figure 5 crossovers
            // land where the paper's do.
            WorkloadPreset::Smoke => WorkloadConfig {
                seed: 42,
                clients: 5,
                servers: 20,
                objects: 600,
                target_reads: 8_000,
                days: 10.0,
                ..WorkloadConfig::preset(WorkloadPreset::Paper)
            },
            WorkloadPreset::Medium => WorkloadConfig {
                seed: 42,
                clients: 33,
                servers: 200,
                objects: 12_000,
                target_reads: 120_000,
                days: 90.0,
                ..WorkloadConfig::preset(WorkloadPreset::Paper)
            },
            WorkloadPreset::Paper => WorkloadConfig {
                seed: 42,
                clients: 33,
                servers: 1000,
                objects: 68_665,
                target_reads: 1_034_077,
                days: 120.0,
                volumes_per_server: 1,
                server_zipf_theta: 0.9,
                object_zipf_theta: 0.986,
                mean_burst_len: 8.0,
                // Browsers fetch a page and its embedded objects within
                // seconds — the spatial locality volume leases exploit.
                mean_intra_burst_gap_secs: 3.0,
                revisit_prob: 0.6,
                size_median_bytes: 3_000.0,
                size_sigma: 1.3,
                writes: WriteModelConfig::paper(),
            },
        }
    }

    /// Returns this configuration scaled to roughly `factor`× the trace
    /// volume: `factor`× the objects and `factor`× the target reads over
    /// the same client population and span.
    ///
    /// Scaling the object universe rather than just replaying more reads
    /// keeps the Zipf popularity shape and the per-object read:write
    /// ratio intact, so `paper().scaled(10)` stands in for a BU-style
    /// trace ten times the size — the regime where the paper's 16-byte
    /// per-lease-record state model starts to dominate server memory.
    #[must_use]
    pub fn scaled(mut self, factor: u32) -> WorkloadConfig {
        self.objects *= u64::from(factor);
        self.target_reads *= u64::from(factor);
        self
    }

    /// Shorthand for [`WorkloadPreset::Smoke`].
    pub fn smoke() -> WorkloadConfig {
        WorkloadConfig::preset(WorkloadPreset::Smoke)
    }

    /// Shorthand for [`WorkloadPreset::Medium`].
    pub fn medium() -> WorkloadConfig {
        WorkloadConfig::preset(WorkloadPreset::Medium)
    }

    /// Shorthand for [`WorkloadPreset::Paper`].
    pub fn paper() -> WorkloadConfig {
        WorkloadConfig::preset(WorkloadPreset::Paper)
    }

    /// The simulated span in milliseconds.
    pub fn span_ms(&self) -> u64 {
        (self.days * 86_400_000.0) as u64
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint (zero clients/servers/objects, non-positive span, or
    /// out-of-range Zipf exponents).
    pub fn validate(&self) -> Result<(), String> {
        if self.clients == 0 {
            return Err("clients must be > 0".into());
        }
        if self.servers == 0 {
            return Err("servers must be > 0".into());
        }
        if self.volumes_per_server == 0 {
            return Err("volumes_per_server must be > 0".into());
        }
        if self.objects == 0 {
            return Err("objects must be > 0".into());
        }
        if self.days <= 0.0 || self.days.is_nan() {
            return Err("days must be positive".into());
        }
        if !self.server_zipf_theta.is_finite() || self.server_zipf_theta < 0.0 {
            return Err("server_zipf_theta must be finite and ≥ 0".into());
        }
        if !self.object_zipf_theta.is_finite() || self.object_zipf_theta < 0.0 {
            return Err("object_zipf_theta must be finite and ≥ 0".into());
        }
        if self.mean_burst_len < 1.0 {
            return Err("mean_burst_len must be ≥ 1".into());
        }
        if !(0.0..=1.0).contains(&self.revisit_prob) {
            return Err("revisit_prob must be within [0, 1]".into());
        }
        Ok(())
    }
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig::medium()
    }
}

/// Generates a [`Trace`] from a [`WorkloadConfig`].
#[derive(Clone, Debug)]
pub struct TraceGenerator {
    config: WorkloadConfig,
}

impl TraceGenerator {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`WorkloadConfig::validate`].
    pub fn new(config: WorkloadConfig) -> TraceGenerator {
        if let Err(e) = config.validate() {
            panic!("invalid workload config: {e}");
        }
        TraceGenerator { config }
    }

    /// The configuration this generator uses.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Runs the full pipeline: topology, reads, write-model assignment,
    /// writes, final time-ordered [`Trace`].
    pub fn generate(&self) -> Trace {
        let cfg = &self.config;
        let mut topo_rng = fork(cfg.seed, "topology");
        let universe = self.build_universe(&mut topo_rng);

        let mut read_rng = fork(cfg.seed, "reads");
        let (mut events, read_counts) = self.generate_reads(&universe, &mut read_rng);

        // Rank objects most-read-first for the write model's popularity split.
        let mut rank: Vec<ObjectId> = (0..universe.object_count() as u64).map(ObjectId).collect();
        rank.sort_by(|a, b| {
            read_counts[b.raw() as usize]
                .cmp(&read_counts[a.raw() as usize])
                .then(a.cmp(b))
        });

        let mut write_rng = fork(cfg.seed, "writes");
        let model = WriteModel::assign(&rank, cfg.writes, &mut write_rng);
        events.extend(model.generate(&universe, cfg.days, &mut write_rng));

        Trace::new(universe, events)
    }

    fn build_universe<R: Rng + ?Sized>(&self, rng: &mut R) -> Universe {
        let cfg = &self.config;
        let vps = cfg.volumes_per_server;
        let total_volumes = cfg.servers * vps;
        let mut builder = UniverseBuilder::new();
        for s in 0..cfg.servers {
            for _ in 0..vps {
                builder.add_volume(ServerId(s));
            }
        }
        // Place objects by server-popularity Zipf (then uniformly across
        // the server's volume shards), but give every volume at least one
        // object so volume choice never dead-ends.
        let server_zipf = Zipf::new(cfg.servers as usize, cfg.server_zipf_theta);
        for v in 0..total_volumes.min(cfg.objects as u32) {
            builder.add_object(
                VolumeId(v),
                sample_size(rng, cfg.size_median_bytes, cfg.size_sigma),
            );
        }
        let placed = u64::from(total_volumes.min(cfg.objects as u32));
        for _ in placed..cfg.objects {
            let server = server_zipf.sample(rng) as u32;
            let v = VolumeId(server * vps + rng.gen_range(0..vps));
            builder.add_object(v, sample_size(rng, cfg.size_median_bytes, cfg.size_sigma));
        }
        builder.build()
    }

    fn generate_reads<R: Rng + ?Sized>(
        &self,
        universe: &Universe,
        rng: &mut R,
    ) -> (Vec<TraceEvent>, Vec<u64>) {
        let cfg = &self.config;
        let span_ms = cfg.span_ms();
        let reads_per_client = (cfg.target_reads / u64::from(cfg.clients)).max(1);
        // Derive the inter-session think time so the quota roughly spans
        // the configured days: sessions_needed × (think + burst·gap) ≈ span.
        let sessions_needed = reads_per_client as f64 / cfg.mean_burst_len;
        let burst_ms = cfg.mean_burst_len * cfg.mean_intra_burst_gap_secs * 1000.0;
        let think_ms = (span_ms as f64 / sessions_needed - burst_ms).max(60_000.0);

        // Sessions pick a *server* by popularity, then one of its volume
        // shards uniformly.
        let server_zipf = Zipf::new(cfg.servers as usize, cfg.server_zipf_theta);
        let vps = cfg.volumes_per_server;
        // Per-volume object choice reuses one Zipf table per volume size.
        let mut zipf_cache: HashMap<usize, Zipf> = HashMap::new();

        let mut events = Vec::with_capacity(cfg.target_reads as usize);
        let mut read_counts = vec![0u64; universe.object_count()];

        // Each client remembers its recent pages (bursts); a revisit
        // session replays one verbatim, like a browser reload.
        const HISTORY: usize = 64;

        for c in 0..cfg.clients {
            let client = ClientId(c);
            let mut remaining = reads_per_client;
            let mut history: Vec<Vec<ObjectId>> = Vec::with_capacity(HISTORY);
            // Stagger client start times so bursts do not align.
            let mut t = exponential(rng, think_ms / 2.0);
            while remaining > 0 && (t as u64) < span_ms {
                let replay = !history.is_empty() && rng.gen_range(0.0..1.0) < cfg.revisit_prob;
                let page: Vec<ObjectId> = if replay {
                    history[rng.gen_range(0..history.len())].clone()
                } else {
                    // Pick a server by popularity, then a non-empty shard
                    // on it; when objects are scarcer than volumes some
                    // shards are empty, so fall back to a linear scan.
                    let mut vol = None;
                    for _ in 0..16 {
                        let server = server_zipf.sample(rng) as u32;
                        let candidate =
                            universe.volume(VolumeId(server * vps + rng.gen_range(0..vps)));
                        if !candidate.objects.is_empty() {
                            vol = Some(candidate);
                            break;
                        }
                    }
                    let vol = vol.unwrap_or_else(|| {
                        universe
                            .volumes()
                            .iter()
                            .find(|v| !v.objects.is_empty())
                            .expect("at least one object exists")
                    });
                    let zipf = zipf_cache
                        .entry(vol.objects.len())
                        .or_insert_with(|| Zipf::new(vol.objects.len(), cfg.object_zipf_theta));
                    let burst = 1 + exponential(rng, cfg.mean_burst_len - 1.0).round() as usize;
                    let objects: Vec<ObjectId> =
                        (0..burst).map(|_| vol.objects[zipf.sample(rng)]).collect();
                    if history.len() < HISTORY {
                        history.push(objects.clone());
                    } else {
                        let slot = rng.gen_range(0..HISTORY);
                        history[slot] = objects.clone();
                    }
                    objects
                };
                for object in page {
                    if remaining == 0 || t as u64 >= span_ms {
                        break;
                    }
                    events.push(TraceEvent::Read {
                        at: Timestamp::from_millis(t as u64),
                        client,
                        object,
                    });
                    read_counts[object.raw() as usize] += 1;
                    remaining -= 1;
                    t += exponential(rng, cfg.mean_intra_burst_gap_secs * 1000.0);
                }
                t += exponential(rng, think_ms);
            }
        }
        (events, read_counts)
    }
}

fn sample_size<R: Rng + ?Sized>(rng: &mut R, median: f64, sigma: f64) -> u64 {
    (log_normal(rng, median, sigma) as u64).clamp(200, 2_000_000)
}

/// Derives a named child RNG from the master seed (same mixing as
/// `vl_sim::SimRng::fork`, reimplemented to avoid a dependency cycle).
fn fork(seed: u64, label: &str) -> impl Rng {
    use rand::SeedableRng;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for b in label.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    rand::rngs::StdRng::seed_from_u64(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_preset_generates_reasonable_trace() {
        let trace = TraceGenerator::new(WorkloadConfig::smoke()).generate();
        let cfg = WorkloadConfig::smoke();
        let reads = trace.read_count();
        // Within 40% of target (generation is stochastic and span-limited).
        assert!(
            reads as f64 > cfg.target_reads as f64 * 0.6,
            "reads {reads} far below target {}",
            cfg.target_reads
        );
        assert!(trace.write_count() > 0);
        assert!(trace.span().as_secs() <= (cfg.days * 86_400.0) as u64 + 1);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = TraceGenerator::new(WorkloadConfig::smoke()).generate();
        let b = TraceGenerator::new(WorkloadConfig::smoke()).generate();
        assert_eq!(a.events().len(), b.events().len());
        assert_eq!(a.events(), b.events());
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = WorkloadConfig::smoke();
        cfg.seed = 1;
        let a = TraceGenerator::new(cfg.clone()).generate();
        cfg.seed = 2;
        let b = TraceGenerator::new(cfg).generate();
        assert_ne!(a.events(), b.events());
    }

    #[test]
    fn every_volume_has_objects() {
        let trace = TraceGenerator::new(WorkloadConfig::smoke()).generate();
        for v in trace.universe().volumes() {
            assert!(!v.objects.is_empty(), "volume {} empty", v.id);
        }
    }

    #[test]
    fn server_popularity_is_skewed() {
        let trace = TraceGenerator::new(WorkloadConfig::smoke()).generate();
        let ranked = trace.servers_by_popularity();
        let top = ranked[0].1;
        let bottom = ranked.last().unwrap().1;
        assert!(
            top > bottom * 2,
            "expected Zipf skew, top {top} vs bottom {bottom}"
        );
    }

    #[test]
    fn reads_spread_over_span_days() {
        let cfg = WorkloadConfig::smoke();
        let trace = TraceGenerator::new(cfg.clone()).generate();
        // The last read should land in the final quarter of the span —
        // i.e. think-time calibration actually stretches the quota out.
        let last_read = trace
            .events()
            .iter()
            .filter(|e| e.is_read())
            .map(|e| e.at())
            .max()
            .unwrap();
        assert!(
            last_read.as_millis() > cfg.span_ms() / 2,
            "reads end too early: {last_read} of {} ms span",
            cfg.span_ms()
        );
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let mut cfg = WorkloadConfig::smoke();
        cfg.clients = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = WorkloadConfig::smoke();
        cfg.days = 0.0;
        assert!(cfg.validate().is_err());
        let mut cfg = WorkloadConfig::smoke();
        cfg.mean_burst_len = 0.5;
        assert!(cfg.validate().is_err());
        let mut cfg = WorkloadConfig::smoke();
        cfg.object_zipf_theta = f64::NAN;
        assert!(cfg.validate().is_err());
        let mut cfg = WorkloadConfig::smoke();
        cfg.revisit_prob = 1.5;
        assert!(cfg.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid workload config")]
    fn generator_panics_on_invalid() {
        let mut cfg = WorkloadConfig::smoke();
        cfg.servers = 0;
        let _ = TraceGenerator::new(cfg);
    }

    #[test]
    fn presets_scale_up() {
        let smoke = WorkloadConfig::smoke();
        let medium = WorkloadConfig::medium();
        let paper = WorkloadConfig::paper();
        assert!(smoke.objects < medium.objects && medium.objects < paper.objects);
        assert_eq!(paper.objects, 68_665);
        assert_eq!(paper.target_reads, 1_034_077);
        assert_eq!(paper.servers, 1000);
        assert_eq!(paper.clients, 33);
    }
}
