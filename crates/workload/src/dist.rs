//! Random-variate samplers used by the workload generator.
//!
//! Implemented here (rather than pulling in `rand_distr`) because the
//! workspace's dependency budget is deliberately small and the generator
//! needs only four families: Zipf-like popularity, exponential gaps,
//! Poisson counts, and log-normal sizes. Each sampler is validated against
//! closed-form moments in its tests.

use rand::Rng;

/// A Zipf-like (power-law) distribution over ranks `0..n`, with exponent
/// `theta`: `P(rank = k) ∝ 1 / (k+1)^theta`.
///
/// Sampling is O(log n) by binary search over the precomputed CDF; the
/// table is built once (O(n)) and reused for millions of draws.
///
/// # Examples
///
/// ```
/// use vl_workload::dist::Zipf;
/// use rand::SeedableRng;
///
/// let zipf = Zipf::new(100, 0.986);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 100);
/// ```
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution over `n` ranks with exponent `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative or non-finite.
    pub fn new(n: usize, theta: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            theta.is_finite() && theta >= 0.0,
            "Zipf exponent must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the top end.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` if the distribution has a single rank.
    pub fn is_empty(&self) -> bool {
        false // `new` rejects n == 0; kept for clippy's len/is_empty pairing
    }

    /// Draws a rank in `0..len()`; rank 0 is the most popular.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of `rank`.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank >= self.cdf.len() {
            return 0.0;
        }
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

/// Samples an exponential variate with the given mean (in the caller's
/// unit) via inverse transform.
///
/// # Panics
///
/// Panics if `mean` is negative or non-finite.
///
/// # Examples
///
/// ```
/// use vl_workload::dist::exponential;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let x = exponential(&mut rng, 10.0);
/// assert!(x >= 0.0);
/// ```
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(
        mean.is_finite() && mean >= 0.0,
        "exponential mean must be finite and non-negative"
    );
    if mean == 0.0 {
        return 0.0;
    }
    // 1 - U ∈ (0, 1] avoids ln(0).
    let u: f64 = rng.gen_range(0.0..1.0);
    -mean * (1.0 - u).ln()
}

/// Samples a Poisson count with rate `lambda`.
///
/// Uses Knuth's product method for small `lambda` and a normal
/// approximation (rounded, clamped at zero) for `lambda > 30`, which is
/// more than accurate enough for write-count synthesis.
///
/// # Panics
///
/// Panics if `lambda` is negative or non-finite.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(
        lambda.is_finite() && lambda >= 0.0,
        "Poisson rate must be finite and non-negative"
    );
    if lambda == 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        // Normal approximation N(λ, λ).
        let z = standard_normal(rng);
        return (lambda + lambda.sqrt() * z).round().max(0.0) as u64;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen_range(0.0..1.0f64);
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Samples a standard normal variate (Box–Muller).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples a log-normal variate parameterized by its **median** and the
/// log-space standard deviation `sigma`. Used for object sizes (web object
/// sizes are famously heavy-tailed).
///
/// # Panics
///
/// Panics if `median` is not positive or `sigma` is negative.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, median: f64, sigma: f64) -> f64 {
    assert!(median > 0.0, "log-normal median must be positive");
    assert!(sigma >= 0.0, "log-normal sigma must be non-negative");
    (median.ln() + sigma * standard_normal(rng)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn zipf_pmf_sums_to_one_and_is_monotone() {
        let z = Zipf::new(1000, 0.986);
        let total: f64 = (0..1000).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for k in 1..1000 {
            assert!(
                z.pmf(k) <= z.pmf(k - 1) + 1e-12,
                "pmf not decreasing at {k}"
            );
        }
    }

    #[test]
    fn zipf_empirical_matches_pmf_for_top_rank() {
        let z = Zipf::new(100, 1.0);
        let mut r = rng();
        let n = 200_000;
        let hits = (0..n).filter(|_| z.sample(&mut r) == 0).count();
        let expected = z.pmf(0);
        let got = hits as f64 / n as f64;
        assert!(
            (got - expected).abs() < 0.01,
            "rank-0 frequency {got} vs pmf {expected}"
        );
    }

    #[test]
    fn zipf_theta_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_samples_cover_range() {
        let z = Zipf::new(5, 0.5);
        let mut r = rng();
        let mut seen = [false; 5];
        for _ in 0..10_000 {
            seen[z.sample(&mut r)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_rejects_empty() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = rng();
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| exponential(&mut r, 25.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 25.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn exponential_zero_mean_is_zero() {
        let mut r = rng();
        assert_eq!(exponential(&mut r, 0.0), 0.0);
    }

    #[test]
    fn poisson_small_lambda_mean_and_variance() {
        let mut r = rng();
        let lambda = 2.5;
        let n = 100_000;
        let samples: Vec<u64> = (0..n).map(|_| poisson(&mut r, lambda)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / n as f64;
        let var = samples
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        assert!((mean - lambda).abs() < 0.05, "mean {mean}");
        assert!((var - lambda).abs() < 0.1, "variance {var}");
    }

    #[test]
    fn poisson_large_lambda_uses_normal_path() {
        let mut r = rng();
        let lambda = 400.0;
        let n = 20_000;
        let mean = (0..n).map(|_| poisson(&mut r, lambda)).sum::<u64>() as f64 / n as f64;
        assert!((mean - lambda).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn poisson_zero_rate_is_zero() {
        let mut r = rng();
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn log_normal_median_converges() {
        let mut r = rng();
        let n = 100_001;
        let mut samples: Vec<f64> = (0..n).map(|_| log_normal(&mut r, 3000.0, 1.2)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[n / 2];
        assert!(
            (median / 3000.0 - 1.0).abs() < 0.05,
            "median {median} not near 3000"
        );
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
