//! Timestamped read/write traces.

use crate::Universe;
use vl_types::{ClientId, Duration, ObjectId, ServerId, Timestamp};

/// One trace record: a client read or a server-side write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// `client` reads `object` at `at`.
    Read {
        /// Event time.
        at: Timestamp,
        /// The reading client.
        client: ClientId,
        /// The object read.
        object: ObjectId,
    },
    /// The origin server modifies `object` at `at`.
    Write {
        /// Event time.
        at: Timestamp,
        /// The object written.
        object: ObjectId,
    },
}

impl TraceEvent {
    /// The event's time.
    pub fn at(&self) -> Timestamp {
        match *self {
            TraceEvent::Read { at, .. } | TraceEvent::Write { at, .. } => at,
        }
    }

    /// The object touched by the event.
    pub fn object(&self) -> ObjectId {
        match *self {
            TraceEvent::Read { object, .. } | TraceEvent::Write { object, .. } => object,
        }
    }

    /// Returns `true` for read events.
    pub fn is_read(&self) -> bool {
        matches!(self, TraceEvent::Read { .. })
    }
}

/// A time-ordered event sequence bound to the [`Universe`] it references.
///
/// Construction sorts events (stably, so same-instant ordering is the
/// producer's ordering) and validates that every referenced object exists.
///
/// # Examples
///
/// ```
/// use vl_workload::{Trace, TraceEvent, UniverseBuilder};
/// use vl_types::{ClientId, ServerId, Timestamp};
///
/// let mut b = UniverseBuilder::new();
/// let v = b.add_volume(ServerId(0));
/// let o = b.add_object(v, 100);
/// let trace = Trace::new(
///     b.build(),
///     vec![
///         TraceEvent::Write { at: Timestamp::from_secs(5), object: o },
///         TraceEvent::Read { at: Timestamp::from_secs(1), client: ClientId(0), object: o },
///     ],
/// );
/// assert!(trace.events()[0].is_read()); // sorted by time
/// assert_eq!(trace.read_count(), 1);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    universe: Universe,
    events: Vec<TraceEvent>,
    reads: u64,
    writes: u64,
}

impl Trace {
    /// Builds a trace, sorting `events` by time.
    ///
    /// # Panics
    ///
    /// Panics if an event references an object outside `universe`.
    pub fn new(universe: Universe, mut events: Vec<TraceEvent>) -> Trace {
        for e in &events {
            assert!(
                (e.object().raw() as usize) < universe.object_count(),
                "trace event references unknown {}",
                e.object()
            );
        }
        events.sort_by_key(TraceEvent::at);
        let reads = events.iter().filter(|e| e.is_read()).count() as u64;
        let writes = events.len() as u64 - reads;
        Trace {
            universe,
            events,
            reads,
            writes,
        }
    }

    /// The topology this trace runs against.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// The time-ordered events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of read events.
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Number of write events.
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Time of the last event, or zero for an empty trace.
    pub fn end_time(&self) -> Timestamp {
        self.events.last().map_or(Timestamp::ZERO, TraceEvent::at)
    }

    /// The simulated span: from time zero to the last event.
    pub fn span(&self) -> Duration {
        self.end_time().saturating_sub(Timestamp::ZERO)
    }

    /// Read counts per server, indexed by raw [`ServerId`] — used to pick
    /// the paper's "most popular" and "10th most popular" servers.
    pub fn reads_per_server(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.universe.server_count()];
        for e in &self.events {
            if e.is_read() {
                counts[self.universe.server_of(e.object()).raw() as usize] += 1;
            }
        }
        counts
    }

    /// Servers ranked by read traffic, busiest first.
    pub fn servers_by_popularity(&self) -> Vec<(ServerId, u64)> {
        let mut v: Vec<(ServerId, u64)> = self
            .reads_per_server()
            .into_iter()
            .enumerate()
            .map(|(i, n)| (ServerId(i as u32), n))
            .filter(|&(_, n)| n > 0)
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// The same events replayed against a universe whose volumes are
    /// sharded `volumes_per_server`-ways (see [`Universe::reshard`]).
    ///
    /// # Panics
    ///
    /// Panics if `volumes_per_server` is zero.
    pub fn with_resharded_volumes(&self, volumes_per_server: u32) -> Trace {
        Trace {
            universe: self.universe.reshard(volumes_per_server),
            events: self.events.clone(),
            reads: self.reads,
            writes: self.writes,
        }
    }

    /// Distinct objects that are read at least once.
    pub fn distinct_objects_read(&self) -> u64 {
        let mut seen = vec![false; self.universe.object_count()];
        let mut n = 0;
        for e in &self.events {
            if e.is_read() {
                let i = e.object().raw() as usize;
                if !seen[i] {
                    seen[i] = true;
                    n += 1;
                }
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UniverseBuilder;

    fn tiny_universe() -> (Universe, Vec<ObjectId>) {
        let mut b = UniverseBuilder::new();
        let v0 = b.add_volume(ServerId(0));
        let v1 = b.add_volume(ServerId(1));
        let objs = vec![
            b.add_object(v0, 10),
            b.add_object(v0, 20),
            b.add_object(v1, 30),
        ];
        (b.build(), objs)
    }

    #[test]
    fn sorts_events_and_counts() {
        let (u, o) = tiny_universe();
        let t = Trace::new(
            u,
            vec![
                TraceEvent::Write {
                    at: Timestamp::from_secs(9),
                    object: o[0],
                },
                TraceEvent::Read {
                    at: Timestamp::from_secs(1),
                    client: ClientId(0),
                    object: o[1],
                },
                TraceEvent::Read {
                    at: Timestamp::from_secs(4),
                    client: ClientId(1),
                    object: o[2],
                },
            ],
        );
        assert_eq!(t.read_count(), 2);
        assert_eq!(t.write_count(), 1);
        assert_eq!(t.end_time(), Timestamp::from_secs(9));
        assert_eq!(t.span(), Duration::from_secs(9));
        let times: Vec<u64> = t.events().iter().map(|e| e.at().as_secs()).collect();
        assert_eq!(times, vec![1, 4, 9]);
    }

    #[test]
    fn popularity_ranking() {
        let (u, o) = tiny_universe();
        let mk_read = |s, obj| TraceEvent::Read {
            at: Timestamp::from_secs(s),
            client: ClientId(0),
            object: obj,
        };
        let t = Trace::new(
            u,
            vec![mk_read(1, o[2]), mk_read(2, o[2]), mk_read(3, o[0])],
        );
        assert_eq!(
            t.servers_by_popularity(),
            vec![(ServerId(1), 2), (ServerId(0), 1)]
        );
        assert_eq!(t.distinct_objects_read(), 2);
        assert_eq!(t.reads_per_server(), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "unknown")]
    fn rejects_unknown_objects() {
        let (u, _) = tiny_universe();
        Trace::new(
            u,
            vec![TraceEvent::Write {
                at: Timestamp::ZERO,
                object: ObjectId(99),
            }],
        );
    }

    #[test]
    fn empty_trace() {
        let (u, _) = tiny_universe();
        let t = Trace::new(u, vec![]);
        assert_eq!(t.read_count(), 0);
        assert_eq!(t.end_time(), Timestamp::ZERO);
        assert!(t.servers_by_popularity().is_empty());
    }
}
