//! Compact binary serialization for traces.
//!
//! Generating the full paper-scale trace takes seconds and experiments
//! often replay the same trace dozens of times; this module lets a trace
//! be generated once and cached on disk (`vltrace` format: little-endian
//! fields behind an 8-byte magic, no external dependencies).

use crate::{Trace, TraceEvent, UniverseBuilder};
use std::fmt;
use std::io::{self, Read, Write};
use vl_types::{ClientId, ObjectId, ServerId, Timestamp, VolumeId};

/// File magic: format name + version.
pub const MAGIC: &[u8; 8] = b"VLTRACE1";

/// Error reading a serialized trace.
#[derive(Debug)]
pub enum TraceReadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Missing or wrong magic bytes.
    BadMagic,
    /// Structurally invalid contents (bad tags, out-of-range references).
    Corrupt(String),
}

impl fmt::Display for TraceReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceReadError::Io(e) => write!(f, "i/o error reading trace: {e}"),
            TraceReadError::BadMagic => f.write_str("not a vltrace file (bad magic)"),
            TraceReadError::Corrupt(what) => write!(f, "corrupt trace file: {what}"),
        }
    }
}

impl std::error::Error for TraceReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceReadError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceReadError {
    fn from(e: io::Error) -> Self {
        TraceReadError::Io(e)
    }
}

const TAG_READ: u8 = 0;
const TAG_WRITE: u8 = 1;

/// Writes `trace` to `w` in `vltrace` format.
///
/// # Errors
///
/// Propagates I/O failures.
///
/// # Examples
///
/// ```
/// use vl_workload::{io::{read_trace, write_trace}, TraceGenerator, WorkloadConfig};
///
/// let trace = TraceGenerator::new(WorkloadConfig::smoke()).generate();
/// let mut buf = Vec::new();
/// write_trace(&mut buf, &trace)?;
/// let back = read_trace(&mut buf.as_slice())?;
/// assert_eq!(back.events(), trace.events());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn write_trace<W: Write>(w: &mut W, trace: &Trace) -> io::Result<()> {
    w.write_all(MAGIC)?;
    let u = trace.universe();
    w.write_all(&(u.volume_count() as u32).to_le_bytes())?;
    for v in u.volumes() {
        w.write_all(&v.server.raw().to_le_bytes())?;
    }
    w.write_all(&(u.object_count() as u64).to_le_bytes())?;
    for o in u.objects() {
        w.write_all(&o.volume.raw().to_le_bytes())?;
        w.write_all(&o.size_bytes.to_le_bytes())?;
    }
    w.write_all(&(trace.events().len() as u64).to_le_bytes())?;
    for e in trace.events() {
        match *e {
            TraceEvent::Read { at, client, object } => {
                w.write_all(&[TAG_READ])?;
                w.write_all(&at.as_millis().to_le_bytes())?;
                w.write_all(&client.raw().to_le_bytes())?;
                w.write_all(&object.raw().to_le_bytes())?;
            }
            TraceEvent::Write { at, object } => {
                w.write_all(&[TAG_WRITE])?;
                w.write_all(&at.as_millis().to_le_bytes())?;
                w.write_all(&object.raw().to_le_bytes())?;
            }
        }
    }
    w.flush()
}

fn read_u8<R: Read>(r: &mut R) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Reads a trace previously written by [`write_trace`].
///
/// # Errors
///
/// [`TraceReadError::BadMagic`] for foreign files,
/// [`TraceReadError::Corrupt`] for structural damage,
/// [`TraceReadError::Io`] (including unexpected EOF) otherwise.
pub fn read_trace<R: Read>(r: &mut R) -> Result<Trace, TraceReadError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(TraceReadError::BadMagic);
    }
    let n_volumes = read_u32(r)?;
    let mut builder = UniverseBuilder::new();
    for _ in 0..n_volumes {
        builder.add_volume(ServerId(read_u32(r)?));
    }
    let n_objects = read_u64(r)?;
    for i in 0..n_objects {
        let volume = read_u32(r)?;
        if volume >= n_volumes {
            return Err(TraceReadError::Corrupt(format!(
                "object {i} references volume {volume} of {n_volumes}"
            )));
        }
        let size = read_u64(r)?;
        builder.add_object(VolumeId(volume), size);
    }
    let n_events = read_u64(r)?;
    let mut events = Vec::with_capacity(n_events.min(1 << 24) as usize);
    for i in 0..n_events {
        let tag = read_u8(r)?;
        let at = Timestamp::from_millis(read_u64(r)?);
        let event = match tag {
            TAG_READ => TraceEvent::Read {
                at,
                client: ClientId(read_u32(r)?),
                object: ObjectId(read_u64(r)?),
            },
            TAG_WRITE => TraceEvent::Write {
                at,
                object: ObjectId(read_u64(r)?),
            },
            other => {
                return Err(TraceReadError::Corrupt(format!(
                    "event {i} has unknown tag {other}"
                )))
            }
        };
        if event.object().raw() >= n_objects {
            return Err(TraceReadError::Corrupt(format!(
                "event {i} references object {} of {n_objects}",
                event.object()
            )));
        }
        events.push(event);
    }
    Ok(Trace::new(builder.build(), events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceGenerator, WorkloadConfig};

    fn sample() -> Trace {
        let mut cfg = WorkloadConfig::smoke();
        cfg.target_reads = 500;
        TraceGenerator::new(cfg).generate()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let trace = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        let back = read_trace(&mut buf.as_slice()).unwrap();
        assert_eq!(back.events(), trace.events());
        assert_eq!(back.universe(), trace.universe());
        assert_eq!(back.read_count(), trace.read_count());
        assert_eq!(back.write_count(), trace.write_count());
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_trace(&mut b"NOTATRCE rest".as_slice()).unwrap_err();
        assert!(matches!(err, TraceReadError::BadMagic), "{err}");
    }

    #[test]
    fn truncation_is_io_error() {
        let trace = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_trace(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceReadError::Io(_)), "{err}");
    }

    #[test]
    fn corrupt_event_tag_detected() {
        let trace = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        // First event tag sits right after universe + event count; find
        // it by recomputing the header length.
        let u = trace.universe();
        let header = 8 + 4 + 4 * u.volume_count() + 8 + 12 * u.object_count() + 8;
        buf[header] = 0x7F;
        let err = read_trace(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceReadError::Corrupt(_)), "{err}");
    }

    #[test]
    fn empty_trace_roundtrips() {
        let mut b = UniverseBuilder::new();
        b.add_volume(ServerId(0));
        let trace = Trace::new(b.build(), vec![]);
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        let back = read_trace(&mut buf.as_slice()).unwrap();
        assert_eq!(back.events().len(), 0);
        assert_eq!(back.universe().volume_count(), 1);
    }
}
