//! Parser for the Boston University web-client trace format.
//!
//! The BU traces (Cunha, Bestavros, Crovella, TR-95-010) record every URL
//! fetched by instrumented Mosaic browsers on 33 workstations. Each record
//! is a whitespace-separated line:
//!
//! ```text
//! <machine> <timestamp> <user/session> "<url>" <size-bytes> <delay-secs>
//! ```
//!
//! e.g. `cs20 791131220.316324 312 "http://cs-www.bu.edu/lib/pics/bu-logo.gif" 1804 0.48`
//!
//! The parser is tolerant: it accepts unquoted URLs, missing trailing
//! fields, and fractional timestamps; malformed lines are counted and
//! skipped rather than failing the whole file. Machines become
//! [`ClientId`]s, URL hosts become servers/volumes (one volume per server,
//! as in §4.2), and full URLs become objects.
//!
//! Because the real traces are not redistributable, tests exercise the
//! parser on an embedded synthetic sample in the same format.

use crate::{Trace, TraceEvent, UniverseBuilder};
use std::collections::HashMap;
use std::fmt;
use std::io::{self, BufRead};
use vl_types::{ClientId, ObjectId, ServerId, Timestamp, VolumeId};

/// Outcome of parsing a BU-format trace.
#[derive(Debug)]
pub struct BuParseResult {
    /// The parsed read-only trace (BU traces contain no writes; synthesize
    /// them with [`crate::WriteModel`]).
    pub trace: Trace,
    /// Lines skipped because they did not parse.
    pub skipped_lines: u64,
    /// Mapping from machine name to assigned client id.
    pub clients: Vec<String>,
    /// Mapping from host name to assigned server id.
    pub servers: Vec<String>,
    /// Mapping from URL to assigned object id.
    pub urls: Vec<String>,
}

/// Error reading a BU trace.
#[derive(Debug)]
pub enum BuParseError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The input contained no parsable records.
    Empty,
}

impl fmt::Display for BuParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuParseError::Io(e) => write!(f, "i/o error reading trace: {e}"),
            BuParseError::Empty => f.write_str("no parsable records in input"),
        }
    }
}

impl std::error::Error for BuParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuParseError::Io(e) => Some(e),
            BuParseError::Empty => None,
        }
    }
}

impl From<io::Error> for BuParseError {
    fn from(e: io::Error) -> Self {
        BuParseError::Io(e)
    }
}

/// Parses BU-format records from `reader`.
///
/// Timestamps are re-based so the earliest record is at time zero. Object
/// sizes are taken from the size field when present (last seen wins).
///
/// # Errors
///
/// Returns [`BuParseError::Io`] on read failure and [`BuParseError::Empty`]
/// if no line parses.
///
/// # Examples
///
/// ```
/// use vl_workload::bu::parse_reader;
///
/// let log = r#"cs20 100.5 1 "http://a.edu/x.html" 120 0.2
/// cs21 101.0 1 "http://b.edu/y.gif" 4096 0.9
/// cs20 102.25 2 "http://a.edu/x.html" 120 0.1
/// "#;
/// let result = parse_reader(log.as_bytes())?;
/// assert_eq!(result.trace.read_count(), 3);
/// assert_eq!(result.servers.len(), 2);
/// # Ok::<(), vl_workload::bu::BuParseError>(())
/// ```
pub fn parse_reader<R: BufRead>(reader: R) -> Result<BuParseResult, BuParseError> {
    struct Rec {
        client: ClientId,
        object: ObjectId,
        at_us: u64,
    }

    let mut clients: Vec<String> = Vec::new();
    let mut client_ids: HashMap<String, ClientId> = HashMap::new();
    let mut servers: Vec<String> = Vec::new();
    let mut server_ids: HashMap<String, ServerId> = HashMap::new();
    let mut urls: Vec<String> = Vec::new();
    let mut url_ids: HashMap<String, ObjectId> = HashMap::new();
    let mut url_volume: Vec<VolumeId> = Vec::new();
    let mut url_size: Vec<u64> = Vec::new();

    let mut records: Vec<Rec> = Vec::new();
    let mut skipped = 0u64;
    let mut builder = UniverseBuilder::new();

    for line in reader.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match parse_line(line) {
            None => skipped += 1,
            Some((machine, ts, url, size)) => {
                let client = *client_ids.entry(machine.to_owned()).or_insert_with(|| {
                    clients.push(machine.to_owned());
                    ClientId(clients.len() as u32 - 1)
                });
                let host = host_of(url);
                let server = *server_ids.entry(host.to_owned()).or_insert_with(|| {
                    servers.push(host.to_owned());
                    let s = ServerId(servers.len() as u32 - 1);
                    let v = builder.add_volume(s);
                    debug_assert_eq!(v.raw(), s.raw(), "volumes are 1:1 with servers");
                    s
                });
                let object = *url_ids.entry(url.to_owned()).or_insert_with(|| {
                    urls.push(url.to_owned());
                    url_volume.push(VolumeId(server.raw()));
                    url_size.push(size.max(1));
                    ObjectId(urls.len() as u64 - 1)
                });
                if size > 0 {
                    url_size[object.raw() as usize] = size;
                }
                records.push(Rec {
                    client,
                    object,
                    at_us: (ts * 1_000_000.0) as u64,
                });
            }
        }
    }

    if records.is_empty() {
        return Err(BuParseError::Empty);
    }

    // Materialize objects in id order (volume membership known only now).
    for (i, &vol) in url_volume.iter().enumerate() {
        let id = builder.add_object(vol, url_size[i]);
        debug_assert_eq!(id.raw(), i as u64);
    }

    let base = records.iter().map(|r| r.at_us).min().expect("non-empty");
    let events = records
        .into_iter()
        .map(|r| TraceEvent::Read {
            at: Timestamp::from_millis((r.at_us - base) / 1000),
            client: r.client,
            object: r.object,
        })
        .collect();

    Ok(BuParseResult {
        trace: Trace::new(builder.build(), events),
        skipped_lines: skipped,
        clients,
        servers,
        urls,
    })
}

/// Splits one record into `(machine, timestamp, url, size)`.
fn parse_line(line: &str) -> Option<(&str, f64, &str, u64)> {
    let mut it = line.split_whitespace();
    let machine = it.next()?;
    let ts: f64 = it.next()?.parse().ok()?;
    if !ts.is_finite() || ts < 0.0 {
        return None;
    }
    let third = it.next()?;
    // Field 3 is a user/session id in the standard format; but accept
    // 4-field variants where the URL comes third.
    let (url_field, rest_first) = if third.starts_with("http") || third.starts_with("\"http") {
        (third, None)
    } else {
        (it.next()?, None::<&str>)
    };
    let _ = rest_first;
    let url = url_field.trim_matches('"');
    if url.is_empty() {
        return None;
    }
    let size = it.next().and_then(|s| s.parse::<u64>().ok()).unwrap_or(0);
    Some((machine, ts, url, size))
}

/// Extracts the `scheme://host` part of a URL (the per-server volume key).
fn host_of(url: &str) -> &str {
    match url.find("://") {
        None => url.split('/').next().unwrap_or(url),
        Some(i) => {
            let after = &url[i + 3..];
            match after.find('/') {
                None => url,
                Some(j) => &url[..i + 3 + j],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
cs20 791131220.316324 312 "http://cs-www.bu.edu/lib/pics/bu-logo.gif" 1804 0.48
cs20 791131221.100000 312 "http://cs-www.bu.edu/" 3094 0.52
cs21 791131225.000000 400 "http://www.ncsa.uiuc.edu/demoweb/" 7009 1.2
garbage line without numbers
cs22 791131230.500000 401 "http://cs-www.bu.edu/lib/pics/bu-logo.gif" 1804 0.03
"#;

    #[test]
    fn parses_sample_and_skips_garbage() {
        let r = parse_reader(SAMPLE.as_bytes()).unwrap();
        assert_eq!(r.trace.read_count(), 4);
        assert_eq!(r.skipped_lines, 1);
        assert_eq!(r.clients, vec!["cs20", "cs21", "cs22"]);
        assert_eq!(r.servers.len(), 2);
        assert_eq!(r.urls.len(), 3);
    }

    #[test]
    fn timestamps_rebase_to_zero() {
        let r = parse_reader(SAMPLE.as_bytes()).unwrap();
        assert_eq!(r.trace.events()[0].at(), Timestamp::ZERO);
        let last = r.trace.end_time();
        // 791131230.5 − 791131220.316324 ≈ 10.18 s
        assert!((last.as_secs_f64() - 10.18).abs() < 0.01, "{last}");
    }

    #[test]
    fn same_url_maps_to_same_object() {
        let r = parse_reader(SAMPLE.as_bytes()).unwrap();
        let objs: Vec<ObjectId> = r.trace.events().iter().map(|e| e.object()).collect();
        assert_eq!(objs[0], objs[3], "bu-logo.gif fetched by cs20 and cs22");
        assert_ne!(objs[0], objs[1]);
    }

    #[test]
    fn volume_grouping_is_per_host() {
        let r = parse_reader(SAMPLE.as_bytes()).unwrap();
        let u = r.trace.universe();
        assert_eq!(u.volume_count(), 2);
        let bu_vol = u.volume_of(r.trace.events()[0].object());
        assert_eq!(u.volume(bu_vol).objects.len(), 2); // logo + index page
    }

    #[test]
    fn sizes_recorded() {
        let r = parse_reader(SAMPLE.as_bytes()).unwrap();
        let logo = r.trace.events()[0].object();
        assert_eq!(r.trace.universe().object(logo).size_bytes, 1804);
    }

    #[test]
    fn unquoted_urls_and_missing_fields_accepted() {
        let log = "m1 10.0 7 http://x.org/a 512\nm1 11.0 7 http://x.org/b\n";
        let r = parse_reader(log.as_bytes()).unwrap();
        assert_eq!(r.trace.read_count(), 2);
        assert_eq!(r.skipped_lines, 0);
    }

    #[test]
    fn empty_input_is_error() {
        assert!(matches!(
            parse_reader("".as_bytes()),
            Err(BuParseError::Empty)
        ));
        assert!(matches!(
            parse_reader("# only comments\n".as_bytes()),
            Err(BuParseError::Empty)
        ));
    }

    #[test]
    fn host_extraction() {
        assert_eq!(host_of("http://a.com/b/c"), "http://a.com");
        assert_eq!(host_of("http://a.com"), "http://a.com");
        assert_eq!(host_of("a.com/b"), "a.com");
    }
}
