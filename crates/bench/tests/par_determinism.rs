//! The parallel sweep executor must be invisible in the results: running
//! a figure's grid on one worker or many must produce exactly the same
//! rows in exactly the same order (the acceptance bar for `--threads`).

use vl_bench::{fig5, fig67, fig89, par, table1};
use vl_workload::{TraceGenerator, WorkloadConfig};

#[test]
fn fig5_rows_identical_across_thread_counts() {
    let trace = TraceGenerator::new(WorkloadConfig::smoke()).generate();
    let timeouts = [10u64, 1_000, 100_000];
    let serial = fig5::run_on(&trace, &timeouts, 1);
    for threads in [2, 4, 8] {
        let parallel = fig5::run_on(&trace, &timeouts, threads);
        assert_eq!(serial, parallel, "thread count {threads} changed the rows");
    }
}

#[test]
fn fig67_rows_identical_across_thread_counts() {
    let trace = TraceGenerator::new(WorkloadConfig::smoke()).generate();
    let serial = fig67::run_on(&trace, 1, &[10, 10_000], 1);
    let parallel = fig67::run_on(&trace, 1, &[10, 10_000], 4);
    assert_eq!(serial, parallel);
}

#[test]
fn fig89_curves_identical_across_thread_counts() {
    let cfg = WorkloadConfig::smoke();
    let serial = fig89::run(&cfg, false, 1).0;
    let parallel = fig89::run(&cfg, false, 4).0;
    assert_eq!(serial, parallel);
}

#[test]
fn table1_rows_identical_across_thread_counts() {
    let cfg = table1::default_config();
    let serial = table1::run(&cfg, 1).0;
    let parallel = table1::run(&cfg, 4).0;
    assert_eq!(serial, parallel);
}

#[test]
fn executor_handles_more_threads_than_jobs() {
    let items: Vec<u32> = (0..3).collect();
    let out = par::map(&items, 64, |&x| x * x);
    assert_eq!(out, vec![0, 1, 4]);
}
