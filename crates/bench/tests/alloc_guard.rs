//! Allocation-regression guard for the steady-state simulation loop.
//!
//! The raw-speed work (timing-wheel queue, SoA lease/cache tables,
//! reused scratch buffers) got the per-event heap-allocation count to
//! zero; this test keeps it there. A counting `#[global_allocator]`
//! measures the allocations of a short replay and a 4x-longer replay
//! over the *same universe*: table growth, track vectors, and queue
//! slabs scale with the universe (and are amortized doubling), so the
//! difference between the two runs must stay far below the difference
//! in event counts. One allocation per event would blow the bound by
//! an order of magnitude.
//!
//! This lives in its own integration-test binary because a global
//! allocator is process-wide, and holds a single `#[test]` so the
//! harness cannot interleave counts from concurrent tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use vl_bench::secs;
use vl_core::{ProtocolKind, SimulationBuilder};
use vl_workload::{Trace, TraceGenerator, WorkloadConfig};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers to `System` for every operation; the counter is a
// plain relaxed atomic with no allocation of its own.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_during<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    let value = f();
    (value, ALLOC_CALLS.load(Ordering::Relaxed) - before)
}

fn kinds() -> Vec<ProtocolKind> {
    vec![
        ProtocolKind::Poll {
            timeout: secs(1_000),
        },
        ProtocolKind::Callback,
        ProtocolKind::Lease {
            timeout: secs(1_000),
        },
        ProtocolKind::VolumeLease {
            volume_timeout: secs(10),
            object_timeout: secs(1_000),
        },
        ProtocolKind::DelayedInvalidation {
            volume_timeout: secs(10),
            object_timeout: secs(1_000),
            inactive_discard: secs(3_600),
        },
    ]
}

fn trace_with_reads(target_reads: u64) -> Trace {
    let mut cfg = WorkloadConfig::smoke();
    cfg.target_reads = target_reads;
    TraceGenerator::new(cfg).generate()
}

#[test]
fn sim_loop_makes_zero_per_event_allocations() {
    // Same clients/servers/objects — only the event count differs, so
    // every universe-proportional allocation appears in both runs.
    let short = trace_with_reads(2_000);
    let long = trace_with_reads(8_000);

    for kind in kinds() {
        let (short_report, short_allocs) =
            allocs_during(|| SimulationBuilder::new(kind).run(&short));
        let (long_report, long_allocs) = allocs_during(|| SimulationBuilder::new(kind).run(&long));

        let extra_events = long_report
            .events_processed
            .saturating_sub(short_report.events_processed);
        assert!(
            extra_events > 4_000,
            "{kind:?}: the long trace must replay substantially more events \
             (short {}, long {})",
            short_report.events_processed,
            long_report.events_processed
        );

        // Amortized growth (doubling tables, queue slab, scratch
        // buffers reaching steady capacity) is allowed; anything close
        // to one allocation per extra event is a regression.
        let extra_allocs = long_allocs.saturating_sub(short_allocs);
        let budget = extra_events / 8;
        assert!(
            extra_allocs < budget,
            "{kind:?}: {extra_allocs} extra allocations for {extra_events} extra events \
             (budget {budget}) — the steady-state loop is allocating per event"
        );
    }
}
