//! The `--trace-out` path must be as deterministic as the rows: for the
//! same workload seed, the JSONL protocol trace is byte-identical no
//! matter how many worker threads the surrounding sweep used (traced
//! replays always run inline, in order, on one thread).

use vl_bench::{cli, fig5, secs};
use vl_core::ProtocolKind;
use vl_workload::{TraceGenerator, WorkloadConfig};

fn traced_kinds() -> Vec<ProtocolKind> {
    vec![
        ProtocolKind::Lease {
            timeout: secs(1_000),
        },
        ProtocolKind::VolumeLease {
            volume_timeout: secs(10),
            object_timeout: secs(1_000),
        },
        ProtocolKind::DelayedInvalidation {
            volume_timeout: secs(10),
            object_timeout: secs(1_000),
            inactive_discard: vl_types::Duration::MAX,
        },
        // Finite discard exercises the full delayed-invalidation arc —
        // queued batches, demotions, reconnections — whose grouped
        // deliveries must be as replay-stable as plain sends.
        ProtocolKind::DelayedInvalidation {
            volume_timeout: secs(10),
            object_timeout: secs(1_000),
            inactive_discard: secs(3_600),
        },
    ]
}

fn write_with_threads(threads: usize, tag: &str) -> Vec<u8> {
    let path = std::env::temp_dir().join(format!("vl-trace-det-{tag}-{threads}.jsonl"));
    let args = cli::CommonArgs {
        config: WorkloadConfig::smoke(),
        csv: None,
        threads,
        trace_out: Some(path.clone()),
        rest: Vec::new(),
    };
    // Run a real parallel sweep first so any cross-thread scheduling
    // noise had its chance to leak into process state.
    let trace = TraceGenerator::new(args.config.clone()).generate();
    let _rows = fig5::run_on(&trace, &[10, 1_000], threads);
    cli::write_trace(&args, &traced_kinds());
    let bytes = std::fs::read(&path).expect("trace file written");
    let _ = std::fs::remove_file(&path);
    bytes
}

#[test]
fn jsonl_trace_is_byte_identical_across_thread_counts() {
    let serial = write_with_threads(1, "a");
    assert!(!serial.is_empty());
    let text = String::from_utf8(serial.clone()).expect("trace is utf8");
    assert!(
        text.starts_with("{\"run\":\"Lease(1000)\"}\n"),
        "run label first"
    );
    assert_eq!(
        text.lines().filter(|l| l.starts_with("{\"run\":")).count(),
        4,
        "one label line per traced protocol"
    );
    assert!(
        text.contains("\"inval_batch\""),
        "the delayed-invalidation runs must emit batched deliveries"
    );
    for threads in [2, 8] {
        let parallel = write_with_threads(threads, "b");
        assert_eq!(
            serial, parallel,
            "thread count {threads} changed the trace bytes"
        );
    }
}

#[test]
fn repeated_traced_replays_are_identical() {
    let a = write_with_threads(4, "r1");
    let b = write_with_threads(4, "r2");
    assert_eq!(a, b);
}
