//! Ablation: volume-lease length t_v vs message overhead and write-delay
//! bound, at a fixed long object lease.

use vl_bench::{ablation, cli, secs};
use vl_core::ProtocolKind;

fn main() {
    let args = cli::parse("ablation_tv", "");
    let (rows, stats) = ablation::volume_timeout_sweep(
        &args.config,
        100_000,
        &[1, 10, 100, 1_000, 10_000],
        args.threads,
    );
    cli::emit(
        "Ablation — volume lease length t_v (object lease fixed at 1e5 s)",
        &ablation::tv_table(&rows),
        args.csv.as_ref(),
    );
    println!("{}", stats.summary());

    cli::write_trace(
        &args,
        &[
            ProtocolKind::Lease {
                timeout: secs(100_000),
            },
            ProtocolKind::VolumeLease {
                volume_timeout: secs(10),
                object_timeout: secs(100_000),
            },
            ProtocolKind::VolumeLease {
                volume_timeout: secs(1_000),
                object_timeout: secs(100_000),
            },
        ],
    );
}
