//! Ablation: how finely each server's objects are grouped into volumes —
//! the grouping question the paper leaves as future work (§4.2).

use vl_bench::{ablation, cli, secs};
use vl_core::ProtocolKind;

fn main() {
    let args = cli::parse("ablation_grouping", "");
    let (rows, stats) =
        ablation::grouping_sweep(&args.config, 10, 100_000, &[1, 2, 4, 8, 16], args.threads);
    cli::emit(
        "Ablation — volume shards per server (t_v=10, t=1e5)",
        &ablation::grouping_table(&rows),
        args.csv.as_ref(),
    );
    println!("{}", stats.summary());

    cli::write_trace(
        &args,
        &[ProtocolKind::VolumeLease {
            volume_timeout: secs(10),
            object_timeout: secs(100_000),
        }],
    );
}
