//! Regenerates Figure 6: average consistency state at the most popular
//! server vs. object timeout.

use vl_bench::{cli, fig67, secs};

fn main() {
    let args = cli::parse("fig6", "");
    let (rows, stats) = fig67::run(&args.config, 1, args.threads);
    cli::emit(
        "Figure 6 — avg state (bytes) at the most popular server vs t",
        &fig67::table(&rows),
        args.csv.as_ref(),
    );
    println!("{}", stats.summary());

    // One representative t per line family (t = 1000 s, mid-sweep).
    let kinds: Vec<_> = fig67::lines().iter().map(|(_, k)| k(secs(1000))).collect();
    cli::write_trace(&args, &kinds);
}
