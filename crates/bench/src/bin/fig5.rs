//! Regenerates Figure 5: messages vs. object timeout, seven algorithm
//! lines, plus the paper's §5.1 headline savings. `--metric bytes` prints
//! the byte-traffic variant instead.

use vl_bench::{cli, fig5, secs};

fn main() {
    let args = cli::parse("fig5", " [--metric messages|bytes]");
    let metric = args
        .rest
        .iter()
        .position(|a| a == "--metric")
        .and_then(|i| args.rest.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "messages".to_owned());

    let (rows, stats) = fig5::run(&args.config, args.threads);
    cli::emit(
        &format!("Figure 5 — total {metric} vs object timeout t"),
        &fig5::table(&rows, &metric),
        args.csv.as_ref(),
    );

    for bound in [10u64, 100] {
        if let Some((vol, delay)) = fig5::savings_at_bound(&rows, bound) {
            println!(
                "write-delay bound {bound}s: Volume saves {:.0}%, Delay saves {:.0}% vs Lease({bound})",
                vol * 100.0,
                delay * 100.0
            );
        }
    }
    println!("(paper: 10s bound → 32% / 39%; 100s bound → 30% / 40%)");
    println!("{}", stats.summary());

    // One representative t per line family (t = 1000 s, mid-sweep).
    let kinds: Vec<_> = fig5::lines().iter().map(|(_, k)| k(secs(1000))).collect();
    cli::write_trace(&args, &kinds);
}
