//! Regenerates Figure 8: cumulative histogram of 1-second periods with
//! load ≥ x messages at the busiest server, default write workload.

use vl_bench::{cli, fig89};

fn main() {
    let args = cli::parse("fig8", "");
    let (curves, stats) = fig89::run(&args.config, false, args.threads);
    cli::emit(
        "Figure 8 — periods of heavy server load (default workload)",
        &fig89::table(&curves),
        args.csv.as_ref(),
    );
    for c in &curves {
        println!("peak {:>6} msg/s  {}", c.peak, c.line);
    }
    println!("{}", stats.summary());

    let kinds: Vec<_> = fig89::lines().iter().map(|&(_, k)| k).collect();
    cli::write_trace(&args, &kinds);
}
