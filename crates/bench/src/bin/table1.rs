//! Validates the simulator against the Table 1 closed forms on a uniform
//! synthetic workload (the paper's §4.1 methodology).

use vl_bench::{cli, table1};

fn main() {
    let args = cli::parse("table1", "");
    let (rows, stats) = table1::run(&table1::default_config(), args.threads);
    cli::emit(
        "Table 1 validation — analytic vs simulated read cost",
        &table1::table(&rows),
        args.csv.as_ref(),
    );
    let worst = rows
        .iter()
        .filter(|r| r.algorithm != "Callback")
        .map(|r| r.relative_error)
        .fold(0.0f64, f64::max);
    println!("worst relative error (excl. Callback start-up): {worst:.4}");
    println!("{}", stats.summary());
}
