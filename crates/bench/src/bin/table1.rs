//! Validates the simulator against the Table 1 closed forms on a uniform
//! synthetic workload (the paper's §4.1 methodology).

use vl_bench::{cli, table1};
use vl_core::ProtocolKind;
use vl_types::Duration;

fn main() {
    let args = cli::parse("table1", "");
    let (rows, stats) = table1::run(&table1::default_config(), args.threads);
    cli::emit(
        "Table 1 validation — analytic vs simulated read cost",
        &table1::table(&rows),
        args.csv.as_ref(),
    );
    let worst = rows
        .iter()
        .filter(|r| r.algorithm != "Callback")
        .map(|r| r.relative_error)
        .fold(0.0f64, f64::max);
    println!("worst relative error (excl. Callback start-up): {worst:.4}");
    println!("{}", stats.summary());

    // The Table 1 algorithm set at its analytic parameters, replayed on
    // the standard (non-uniform) workload for inspection.
    let (t, tv) = (
        Duration::from_secs_f64(table1::T_SECS),
        Duration::from_secs_f64(table1::TV_SECS),
    );
    cli::write_trace(
        &args,
        &[
            ProtocolKind::PollEachRead,
            ProtocolKind::Poll { timeout: t },
            ProtocolKind::Callback,
            ProtocolKind::Lease { timeout: t },
            ProtocolKind::WaitingLease { timeout: t },
            ProtocolKind::VolumeLease {
                volume_timeout: tv,
                object_timeout: t,
            },
            ProtocolKind::DelayedInvalidation {
                volume_timeout: tv,
                object_timeout: t,
                inactive_discard: vl_types::Duration::MAX,
            },
        ],
    );
}
