//! Ablation: the Delay algorithm's inactive-discard parameter d —
//! reconnection traffic vs retained server state.

use vl_bench::{ablation, cli, secs};
use vl_core::ProtocolKind;
use vl_types::Duration;

fn main() {
    let args = cli::parse("ablation_d", "");
    let (rows, stats) = ablation::inactive_discard_sweep(
        &args.config,
        10,
        100_000,
        &[Some(600), Some(3_600), Some(86_400), None],
        args.threads,
    );
    cli::emit(
        "Ablation — Delay(10, 1e5, d): discard parameter d",
        &ablation::d_table(&rows),
        args.csv.as_ref(),
    );
    println!("{}", stats.summary());

    cli::write_trace(
        &args,
        &[
            ProtocolKind::DelayedInvalidation {
                volume_timeout: secs(10),
                object_timeout: secs(100_000),
                inactive_discard: secs(600),
            },
            ProtocolKind::DelayedInvalidation {
                volume_timeout: secs(10),
                object_timeout: secs(100_000),
                inactive_discard: Duration::MAX,
            },
        ],
    );
}
