//! Ablation: invalidating leases vs §2.4's "wait out the leases" option
//! (zero write messages, every write blocks up to t).

use vl_bench::{ablation, cli, secs};
use vl_core::ProtocolKind;

fn main() {
    let args = cli::parse("ablation_wait", "");
    let (rows, stats) = ablation::waiting_lease_sweep(
        &args.config,
        &[10, 100, 1_000, 10_000, 100_000],
        args.threads,
    );
    cli::emit(
        "Ablation — Lease(t) vs WaitLease(t): messages vs write blocking",
        &ablation::wait_table(&rows),
        args.csv.as_ref(),
    );
    println!("{}", stats.summary());

    cli::write_trace(
        &args,
        &[
            ProtocolKind::Lease {
                timeout: secs(1_000),
            },
            ProtocolKind::WaitingLease {
                timeout: secs(1_000),
            },
        ],
    );
}
