//! Regenerates Figure 9: the Figure 8 histogram under the "bursty write"
//! workload (k ~ Exp(10) co-writes per volume write).

use vl_bench::{cli, fig89};

fn main() {
    let args = cli::parse("fig9", "");
    let (curves, stats) = fig89::run(&args.config, true, args.threads);
    cli::emit(
        "Figure 9 — periods of heavy server load (bursty-write workload)",
        &fig89::table(&curves),
        args.csv.as_ref(),
    );
    for c in &curves {
        println!("peak {:>6} msg/s  {}", c.peak, c.line);
    }
    println!("{}", stats.summary());

    let kinds: Vec<_> = fig89::lines().iter().map(|&(_, k)| k).collect();
    cli::write_trace(&args, &kinds);
}
