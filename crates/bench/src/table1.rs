//! Table 1 validation: simulator vs. closed-form costs on uniform
//! workloads (the paper's §4.1 validation methodology).

use crate::output::Table;
use crate::par;
use crate::uniform::{uniform_trace, UniformConfig};
use crate::SweepStats;
use vl_analytic::{Algorithm, CostParams};
use vl_core::{ProtocolKind, SimulationBuilder};
use vl_types::Duration;

/// One algorithm's simulated-vs-analytic comparison.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// Table 1 row name.
    pub algorithm: String,
    /// Analytic read cost, one-way messages per read.
    pub analytic_read_msgs: f64,
    /// Simulated messages per read.
    pub simulated_read_msgs: f64,
    /// Relative error (0.0 = perfect agreement; NaN-free).
    pub relative_error: f64,
    /// Simulated stale-read fraction.
    pub stale_fraction: f64,
    /// Analytic expected stale seconds (Table 1 column 1).
    pub expected_stale_secs: f64,
}

/// The standard validation setup: read-only uniform workload (so the
/// read-cost column isolates renewal traffic), `t = 100 s`, `t_v = 25 s`.
pub fn default_config() -> UniformConfig {
    UniformConfig {
        clients: 8,
        objects: 10,
        read_period: Duration::from_secs(10),
        write_period: None,
        span: Duration::from_secs(20_000),
    }
}

/// Object / volume timeouts used by the validation.
pub const T_SECS: f64 = 100.0;
/// Volume timeout, seconds.
pub const TV_SECS: f64 = 25.0;
/// Clock-skew bound `ε` assumed for the self-invalidation row, seconds.
pub const SKEW_SECS: f64 = 1.0;

fn kind_for(alg: Algorithm) -> ProtocolKind {
    match alg {
        Algorithm::PollEachRead => ProtocolKind::PollEachRead,
        Algorithm::Poll => ProtocolKind::Poll {
            timeout: Duration::from_secs_f64(T_SECS),
        },
        Algorithm::Callback => ProtocolKind::Callback,
        Algorithm::Lease => ProtocolKind::Lease {
            timeout: Duration::from_secs_f64(T_SECS),
        },
        Algorithm::WaitingLease => ProtocolKind::WaitingLease {
            timeout: Duration::from_secs_f64(T_SECS),
        },
        Algorithm::SelfInval => ProtocolKind::SelfInval {
            timeout: Duration::from_secs_f64(T_SECS),
            skew_bound: Duration::from_secs_f64(SKEW_SECS),
        },
        Algorithm::VolumeLease => ProtocolKind::VolumeLease {
            volume_timeout: Duration::from_secs_f64(TV_SECS),
            object_timeout: Duration::from_secs_f64(T_SECS),
        },
        Algorithm::DelayedInvalidation => ProtocolKind::DelayedInvalidation {
            volume_timeout: Duration::from_secs_f64(TV_SECS),
            object_timeout: Duration::from_secs_f64(T_SECS),
            inactive_discard: Duration::MAX,
        },
    }
}

/// Runs every algorithm over the uniform workload on up to `threads`
/// workers and compares each against its Table 1 row (plus the
/// waiting-lease extension).
pub fn run(cfg: &UniformConfig, threads: usize) -> (Vec<Row>, SweepStats) {
    let trace = uniform_trace(cfg);
    let params = CostParams {
        object_timeout_secs: T_SECS,
        volume_timeout_secs: TV_SECS,
        inactive_discard_secs: f64::INFINITY,
        object_read_rate: cfg.object_read_rate(),
        volume_read_rate: cfg.volume_read_rate(),
        clients_caching: u64::from(cfg.clients),
        clients_with_object_lease: u64::from(cfg.clients),
        clients_with_volume_lease: u64::from(cfg.clients),
        clients_recently_inactive: 0,
        clock_skew_bound_secs: SKEW_SECS,
    };
    let started = std::time::Instant::now();
    let rows = par::map(&Algorithm::ALL, threads, |&alg| {
        {
            let costs = alg.costs(&params);
            let report = SimulationBuilder::new(kind_for(alg)).run(&trace);
            let simulated = report.messages_per_read();
            // Callback's fetch messages are start-up cost, not steady
            // state; its analytic read cost is 0, so compare absolutely.
            let analytic = costs.read_cost_messages();
            let relative_error = if analytic > 0.0 {
                (simulated - analytic).abs() / analytic
            } else {
                simulated
            };
            Row {
                algorithm: alg.to_string(),
                analytic_read_msgs: analytic,
                simulated_read_msgs: simulated,
                relative_error,
                stale_fraction: report.summary.stale_fraction,
                expected_stale_secs: costs.expected_stale_secs,
            }
        }
    });
    let stats = SweepStats {
        simulations: rows.len(),
        events_processed: trace.events().len() as u64 * rows.len() as u64,
        elapsed: started.elapsed(),
        threads,
    };
    (rows, stats)
}

/// Formats the validation rows.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new([
        "algorithm",
        "analytic msgs/read",
        "simulated msgs/read",
        "rel err",
        "stale frac",
    ]);
    for r in rows {
        t.push([
            r.algorithm.clone(),
            format!("{:.4}", r.analytic_read_msgs),
            format!("{:.4}", r.simulated_read_msgs),
            format!("{:.4}", r.relative_error),
            format!("{:.4}", r.stale_fraction),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulator_agrees_with_analytic_model() {
        let rows = run(&default_config(), 2).0;
        assert_eq!(rows.len(), 8);
        for r in &rows {
            if r.algorithm == "Callback" {
                // Start-up fetches only: a few hundredths of a message
                // per read on a long trace.
                assert!(
                    r.simulated_read_msgs < 0.05,
                    "callback steady state ≈ 0: {}",
                    r.simulated_read_msgs
                );
            } else {
                assert!(
                    r.relative_error < 0.08,
                    "{}: analytic {} vs simulated {}",
                    r.algorithm,
                    r.analytic_read_msgs,
                    r.simulated_read_msgs
                );
            }
        }
    }

    #[test]
    fn read_only_workload_is_never_stale() {
        let rows = run(&default_config(), 2).0;
        assert!(rows.iter().all(|r| r.stale_fraction == 0.0));
    }

    #[test]
    fn table_renders_all_algorithms() {
        let rows = run(&default_config(), 2).0;
        let rendered = table(&rows).render();
        for name in [
            "Poll Each Read",
            "Callback",
            "Self-Inval",
            "Volume Leases",
            "Vol. Delay Inval",
        ] {
            assert!(rendered.contains(name), "{name} missing");
        }
    }
}
