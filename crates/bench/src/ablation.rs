//! Ablations beyond the paper's figures.
//!
//! * **`t_v` sweep** — how the volume-lease length trades message
//!   overhead against the write-delay bound, at a fixed object lease.
//!   Locates the "short volume leases are cheap" claim of §3.1.3.
//! * **`d` sweep** — the `Delay` algorithm's inactive-discard parameter:
//!   small `d` bounds server state but forces reconnections (§5.2 calls
//!   this out without quantifying it; this experiment does).

use crate::output::Table;
use crate::{par, secs, SweepStats};
use std::time::Instant;
use vl_core::{ProtocolKind, SimulationBuilder};
use vl_metrics::MessageKind;
use vl_types::{Duration, ServerId};
use vl_workload::{TraceGenerator, WorkloadConfig};

/// One point of the `t_v` sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct TvRow {
    /// Volume lease length, seconds.
    pub tv_secs: u64,
    /// Total messages.
    pub messages: u64,
    /// Messages relative to plain `Lease(t)` on the same trace.
    pub overhead_vs_lease: f64,
    /// The write-delay bound min(t, t_v), seconds.
    pub write_delay_bound_secs: u64,
}

/// Sweeps `t_v` at fixed object lease `t` on up to `threads` workers.
/// The `Lease(t)` baseline runs first (serially); the per-`t_v` points
/// then fan out over the shared trace.
pub fn volume_timeout_sweep(
    cfg: &WorkloadConfig,
    t_secs: u64,
    tvs: &[u64],
    threads: usize,
) -> (Vec<TvRow>, SweepStats) {
    let trace = TraceGenerator::new(cfg.clone()).generate();
    let started = Instant::now();
    let lease = SimulationBuilder::new(ProtocolKind::Lease {
        timeout: secs(t_secs),
    })
    .run(&trace);
    let base = lease.summary.messages as f64;
    let rows = par::map(tvs, threads, |&tv| {
        let report = SimulationBuilder::new(ProtocolKind::VolumeLease {
            volume_timeout: secs(tv),
            object_timeout: secs(t_secs),
        })
        .run(&trace);
        TvRow {
            tv_secs: tv,
            messages: report.summary.messages,
            overhead_vs_lease: report.summary.messages as f64 / base - 1.0,
            write_delay_bound_secs: tv.min(t_secs),
        }
    });
    let stats = SweepStats {
        simulations: rows.len() + 1,
        events_processed: trace.events().len() as u64 * (rows.len() as u64 + 1),
        elapsed: started.elapsed(),
        threads,
    };
    (rows, stats)
}

/// One point of the `d` sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct DRow {
    /// Inactive-discard parameter, seconds (`u64::MAX` rendered as ∞).
    pub d_secs: u64,
    /// Total messages.
    pub messages: u64,
    /// Reconnection exchanges that ran (`MUST_RENEW_ALL` count).
    pub reconnections: u64,
    /// Average state at the busiest server, bytes.
    pub avg_state_bytes: f64,
}

/// Sweeps `d` for `Delay(t_v, t, d)` on up to `threads` workers.
pub fn inactive_discard_sweep(
    cfg: &WorkloadConfig,
    tv_secs: u64,
    t_secs: u64,
    ds: &[Option<u64>],
    threads: usize,
) -> (Vec<DRow>, SweepStats) {
    let trace = TraceGenerator::new(cfg.clone()).generate();
    let busiest: ServerId = trace.servers_by_popularity()[0].0;
    let started = Instant::now();
    let rows = par::map(ds, threads, |&d| {
        let report = SimulationBuilder::new(ProtocolKind::DelayedInvalidation {
            volume_timeout: secs(tv_secs),
            object_timeout: secs(t_secs),
            inactive_discard: d.map_or(Duration::MAX, secs),
        })
        .run(&trace);
        DRow {
            d_secs: d.unwrap_or(u64::MAX),
            messages: report.summary.messages,
            reconnections: report
                .metrics
                .message_counters()
                .count(MessageKind::MustRenewAll),
            avg_state_bytes: report.avg_state_bytes(busiest),
        }
    });
    let stats = SweepStats {
        simulations: rows.len(),
        events_processed: trace.events().len() as u64 * rows.len() as u64,
        elapsed: started.elapsed(),
        threads,
    };
    (rows, stats)
}

/// One point of the volume-grouping sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct GroupingRow {
    /// Volume shards per server.
    pub volumes_per_server: u32,
    /// Total messages under Volume(t_v, t).
    pub volume_messages: u64,
    /// Total messages under Delay(t_v, t, ∞).
    pub delay_messages: u64,
}

/// Sweeps how finely each server's objects are sharded into volumes —
/// the "more sophisticated grouping" the paper leaves as future work
/// (§4.2). Finer volumes weaken renewal amortization (a burst may span
/// shards), so message counts rise with `volumes_per_server`.
pub fn grouping_sweep(
    cfg: &WorkloadConfig,
    tv_secs: u64,
    t_secs: u64,
    vps: &[u32],
    threads: usize,
) -> (Vec<GroupingRow>, SweepStats) {
    // One fixed trace; only the object→volume mapping varies, so the
    // sweep isolates the grouping policy. Each worker reshards its own
    // copy (resharding is cheap next to the two simulations it feeds).
    let base = TraceGenerator::new(cfg.clone()).generate();
    let started = Instant::now();
    let rows = par::map(vps, threads, |&v| {
        let trace = base.with_resharded_volumes(v);
        let volume = SimulationBuilder::new(ProtocolKind::VolumeLease {
            volume_timeout: secs(tv_secs),
            object_timeout: secs(t_secs),
        })
        .run(&trace);
        let delay = SimulationBuilder::new(ProtocolKind::DelayedInvalidation {
            volume_timeout: secs(tv_secs),
            object_timeout: secs(t_secs),
            inactive_discard: Duration::MAX,
        })
        .run(&trace);
        GroupingRow {
            volumes_per_server: v,
            volume_messages: volume.summary.messages,
            delay_messages: delay.summary.messages,
        }
    });
    let stats = SweepStats {
        simulations: rows.len() * 2,
        events_processed: base.events().len() as u64 * rows.len() as u64 * 2,
        elapsed: started.elapsed(),
        threads,
    };
    (rows, stats)
}

/// Formats the grouping sweep.
pub fn grouping_table(rows: &[GroupingRow]) -> Table {
    let mut t = Table::new(["volumes_per_server", "volume_msgs", "delay_msgs"]);
    for r in rows {
        t.push([
            r.volumes_per_server.to_string(),
            r.volume_messages.to_string(),
            r.delay_messages.to_string(),
        ]);
    }
    t
}

/// One point of the waiting-lease comparison.
#[derive(Clone, Debug, PartialEq)]
pub struct WaitRow {
    /// Object lease length, seconds.
    pub t_secs: u64,
    /// Messages under classic invalidating Lease(t).
    pub lease_messages: u64,
    /// Messages under WaitLease(t) (no invalidations ever sent).
    pub wait_messages: u64,
    /// Largest write delay under WaitLease(t), seconds (classic Lease
    /// never blocks in a failure-free trace).
    pub wait_max_delay_secs: f64,
}

/// Compares invalidating leases against §2.4's "wait out the leases"
/// option across object-lease lengths.
pub fn waiting_lease_sweep(
    cfg: &WorkloadConfig,
    ts: &[u64],
    threads: usize,
) -> (Vec<WaitRow>, SweepStats) {
    let trace = TraceGenerator::new(cfg.clone()).generate();
    let started = Instant::now();
    let rows = par::map(ts, threads, |&t| {
        let lease = SimulationBuilder::new(ProtocolKind::Lease { timeout: secs(t) }).run(&trace);
        let wait =
            SimulationBuilder::new(ProtocolKind::WaitingLease { timeout: secs(t) }).run(&trace);
        WaitRow {
            t_secs: t,
            lease_messages: lease.summary.messages,
            wait_messages: wait.summary.messages,
            wait_max_delay_secs: wait.summary.max_write_delay_secs,
        }
    });
    let stats = SweepStats {
        simulations: rows.len() * 2,
        events_processed: trace.events().len() as u64 * rows.len() as u64 * 2,
        elapsed: started.elapsed(),
        threads,
    };
    (rows, stats)
}

/// Formats the waiting-lease comparison.
pub fn wait_table(rows: &[WaitRow]) -> Table {
    let mut t = Table::new(["t_secs", "lease_msgs", "wait_msgs", "wait_max_delay_s"]);
    for r in rows {
        t.push([
            r.t_secs.to_string(),
            r.lease_messages.to_string(),
            r.wait_messages.to_string(),
            format!("{:.1}", r.wait_max_delay_secs),
        ]);
    }
    t
}

/// Formats the `t_v` sweep.
pub fn tv_table(rows: &[TvRow]) -> Table {
    let mut t = Table::new(["tv_secs", "messages", "overhead_vs_lease", "write_bound_s"]);
    for r in rows {
        t.push([
            r.tv_secs.to_string(),
            r.messages.to_string(),
            format!("{:+.1}%", r.overhead_vs_lease * 100.0),
            r.write_delay_bound_secs.to_string(),
        ]);
    }
    t
}

/// Formats the `d` sweep.
pub fn d_table(rows: &[DRow]) -> Table {
    let mut t = Table::new(["d_secs", "messages", "reconnections", "busiest_state_bytes"]);
    for r in rows {
        let d = if r.d_secs == u64::MAX {
            "inf".to_owned()
        } else {
            r.d_secs.to_string()
        };
        t.push([
            d,
            r.messages.to_string(),
            r.reconnections.to_string(),
            format!("{:.1}", r.avg_state_bytes),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longer_tv_means_less_overhead_but_longer_write_bound() {
        let rows = volume_timeout_sweep(
            &WorkloadConfig::smoke(),
            100_000,
            &[1, 10, 100, 1000, 10_000],
            2,
        )
        .0;
        assert_eq!(rows.len(), 5);
        assert!(
            rows.first().unwrap().messages >= rows.last().unwrap().messages,
            "shortest t_v must renew most"
        );
        assert!(rows.iter().all(|r| r.overhead_vs_lease >= -1e-9));
        assert_eq!(rows[0].write_delay_bound_secs, 1);
        assert_eq!(rows[4].write_delay_bound_secs, 10_000);
    }

    #[test]
    fn small_d_trades_state_for_reconnections() {
        let rows = inactive_discard_sweep(
            &WorkloadConfig::smoke(),
            10,
            100_000,
            &[Some(600), Some(86_400), None],
            2,
        )
        .0;
        assert_eq!(rows.len(), 3);
        let small = &rows[0];
        let inf = &rows[2];
        assert!(
            small.reconnections >= inf.reconnections,
            "short d must force at least as many reconnections"
        );
        assert_eq!(inf.reconnections, 0, "d=∞ never demotes");
        // §5.2 expects short d to raise traffic, but the reconnection
        // exchange also bulk-renews every cached object in 6 messages,
        // which can pay for itself — so totals land near each other
        // either way on a given trace. Assert the magnitude, not the sign.
        let ratio = small.messages as f64 / inf.messages as f64;
        assert!(
            (0.8..1.3).contains(&ratio),
            "short-d traffic should stay in the same regime: {} vs {} (ratio {ratio:.3})",
            small.messages,
            inf.messages
        );
    }

    #[test]
    fn waiting_lease_trades_messages_for_write_delay() {
        let rows = waiting_lease_sweep(&WorkloadConfig::smoke(), &[100, 10_000], 2).0;
        for r in &rows {
            assert!(
                r.wait_messages <= r.lease_messages,
                "waiting must remove the invalidation traffic: {} vs {}",
                r.wait_messages,
                r.lease_messages
            );
        }
        // Longer leases ⇒ longer worst-case write blocking.
        assert!(rows[1].wait_max_delay_secs >= rows[0].wait_max_delay_secs);
        assert!(rows[1].wait_max_delay_secs > 0.0, "some write hit a lease");
    }

    #[test]
    fn finer_volumes_cost_more_messages() {
        let rows = grouping_sweep(&WorkloadConfig::smoke(), 10, 100_000, &[1, 8], 2).0;
        assert!(
            rows[1].volume_messages > rows[0].volume_messages,
            "sharding a server into 8 volumes must weaken amortization: {rows:?}"
        );
    }

    #[test]
    fn tables_render() {
        let tv_rows = volume_timeout_sweep(&WorkloadConfig::smoke(), 10_000, &[10, 100], 2).0;
        assert!(tv_table(&tv_rows).render().contains("overhead_vs_lease"));
        let d_rows = inactive_discard_sweep(&WorkloadConfig::smoke(), 10, 10_000, &[None], 2).0;
        assert!(d_table(&d_rows).render().contains("inf"));
    }
}
