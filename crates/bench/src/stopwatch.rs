//! Minimal timing harness for the `benches/` targets.
//!
//! The benches are plain `fn main()` binaries (`harness = false`) so the
//! workspace stays `std`-only; this module gives them a common
//! warm-up/measure loop and a stable one-line output format:
//!
//! ```text
//! bench fig5/volume_lease_full_trace      best 12.345 ms   mean 13.012 ms   (10 iters)
//! ```

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Times `f` for `iters` iterations after one untimed warm-up call and
/// prints the best and mean per-iteration wall-clock. Returns
/// `(best, mean)` so callers can assert on or aggregate the numbers.
pub fn bench_fn<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) -> (Duration, Duration) {
    assert!(iters > 0, "need at least one iteration");
    black_box(f());
    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..iters {
        let started = Instant::now();
        black_box(f());
        let took = started.elapsed();
        total += took;
        best = best.min(took);
    }
    let mean = total / iters;
    println!(
        "bench {name:<44} best {:>10}   mean {:>10}   ({iters} iters)",
        fmt(best),
        fmt(mean)
    );
    (best, mean)
}

/// Renders a duration at a human scale (ns/µs/ms/s).
fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.1} µs", ns as f64 / 1_000.0)
    } else if ns < 10_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_is_at_most_mean() {
        let (best, mean) = bench_fn("stopwatch/self_test", 5, || {
            black_box((0..1000u64).sum::<u64>())
        });
        assert!(best <= mean);
        assert!(mean > Duration::ZERO);
    }

    #[test]
    fn formats_scale() {
        assert!(fmt(Duration::from_nanos(5)).ends_with("ns"));
        assert!(fmt(Duration::from_micros(50)).ends_with("µs"));
        assert!(fmt(Duration::from_millis(50)).ends_with("ms"));
        assert!(fmt(Duration::from_secs(50)).ends_with(" s"));
    }
}
