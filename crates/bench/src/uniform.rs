//! Uniform synthetic workloads with analytically known costs.
//!
//! The paper validated its simulator "under simple synthetic workloads
//! for which we could analytically compute the expected results" (§4.1);
//! this module builds those workloads: `clients` clients read each of
//! `objects` objects on a fixed period, and each object is written on a
//! fixed period, all phase-staggered so events never collide.

use vl_types::{ClientId, Duration, ObjectId, ServerId, Timestamp};
use vl_workload::{Trace, TraceEvent, UniverseBuilder};

/// Configuration of a uniform workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UniformConfig {
    /// Number of clients; each reads every object.
    pub clients: u32,
    /// Number of objects, all in one volume on one server.
    pub objects: u64,
    /// Period between one client's successive reads of one object.
    pub read_period: Duration,
    /// Period between writes to one object (`None` = read-only).
    pub write_period: Option<Duration>,
    /// Total simulated span.
    pub span: Duration,
}

impl UniformConfig {
    /// The per-object, per-client read rate `R` in reads/second.
    pub fn object_read_rate(&self) -> f64 {
        1.0 / self.read_period.as_secs_f64()
    }

    /// The aggregate volume read rate `Σ R_o` for one client.
    pub fn volume_read_rate(&self) -> f64 {
        self.object_read_rate() * self.objects as f64
    }

    /// Total reads the trace will contain.
    pub fn total_reads(&self) -> u64 {
        let per_stream = self.span.as_millis() / self.read_period.as_millis();
        per_stream * u64::from(self.clients) * self.objects
    }
}

/// Builds the uniform trace for `cfg`.
///
/// Reads are staggered by client and object so that every (client,
/// object) stream ticks on its own phase; writes (if any) are offset by
/// half a write period so they interleave with reads rather than
/// coinciding.
///
/// # Panics
///
/// Panics if any period is zero or the span is empty.
pub fn uniform_trace(cfg: &UniformConfig) -> Trace {
    assert!(
        cfg.clients > 0 && cfg.objects > 0,
        "need clients and objects"
    );
    assert!(
        !cfg.read_period.is_zero() && !cfg.span.is_zero(),
        "periods and span must be positive"
    );
    let mut builder = UniverseBuilder::new();
    let volume = builder.add_volume(ServerId(0));
    let objects: Vec<ObjectId> = (0..cfg.objects)
        .map(|_| builder.add_object(volume, 1000))
        .collect();
    let universe = builder.build();

    let span_ms = cfg.span.as_millis();
    let read_ms = cfg.read_period.as_millis();
    let mut events = Vec::new();
    for c in 0..cfg.clients {
        for (oi, &object) in objects.iter().enumerate() {
            // Deterministic phase in [0, read_period).
            let phase = (u64::from(c).wrapping_mul(7919) + oi as u64 * 104_729) % read_ms;
            let mut t = phase;
            while t < span_ms {
                events.push(TraceEvent::Read {
                    at: Timestamp::from_millis(t),
                    client: ClientId(c),
                    object,
                });
                t += read_ms;
            }
        }
    }
    if let Some(wp) = cfg.write_period {
        assert!(!wp.is_zero(), "write period must be positive");
        let write_ms = wp.as_millis();
        for (oi, &object) in objects.iter().enumerate() {
            let phase = write_ms / 2 + (oi as u64 * 15_485_863) % (write_ms / 2).max(1);
            let mut t = phase;
            while t < span_ms {
                events.push(TraceEvent::Write {
                    at: Timestamp::from_millis(t),
                    object,
                });
                t += write_ms;
            }
        }
    }
    Trace::new(universe, events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vl_analytic::{Algorithm, CostParams};
    use vl_core::{ProtocolKind, SimulationBuilder};

    fn cfg() -> UniformConfig {
        UniformConfig {
            clients: 4,
            objects: 5,
            read_period: Duration::from_secs(10),
            write_period: None,
            span: Duration::from_secs(10_000),
        }
    }

    #[test]
    fn trace_has_expected_event_counts() {
        let c = cfg();
        let trace = uniform_trace(&c);
        assert_eq!(trace.read_count(), c.total_reads());
        assert_eq!(trace.write_count(), 0);
        let with_writes = UniformConfig {
            write_period: Some(Duration::from_secs(100)),
            ..c
        };
        let trace = uniform_trace(&with_writes);
        // ~100 writes per object over 10,000 s.
        assert!((trace.write_count() as i64 - 500).abs() <= 5);
    }

    /// The paper's validation method: on a uniform read-only workload the
    /// simulated Lease(t) read cost must match 1/(R·t) round trips/read.
    #[test]
    fn lease_read_cost_matches_analytic() {
        let c = cfg();
        let trace = uniform_trace(&c);
        for t_secs in [20.0f64, 100.0, 500.0] {
            let report = SimulationBuilder::new(ProtocolKind::Lease {
                timeout: Duration::from_secs_f64(t_secs),
            })
            .run(&trace);
            let analytic = Algorithm::Lease.costs(&CostParams {
                object_timeout_secs: t_secs,
                volume_timeout_secs: 0.0,
                inactive_discard_secs: f64::INFINITY,
                object_read_rate: c.object_read_rate(),
                volume_read_rate: c.volume_read_rate(),
                clients_caching: u64::from(c.clients),
                clients_with_object_lease: u64::from(c.clients),
                clients_with_volume_lease: u64::from(c.clients),
                clients_recently_inactive: 0,
                clock_skew_bound_secs: 0.0,
            });
            let got = report.messages_per_read();
            let want = analytic.read_cost_messages();
            assert!(
                (got - want).abs() / want < 0.05,
                "t={t_secs}: simulated {got} vs analytic {want}"
            );
        }
    }

    /// Volume(t_v, t) on the same workload must match the two-term read
    /// cost 1/(ΣR_o·t_v) + 1/(R·t), in round trips per read.
    #[test]
    fn volume_read_cost_matches_analytic() {
        let c = cfg();
        let trace = uniform_trace(&c);
        let (tv_secs, t_secs) = (25.0f64, 400.0f64);
        let report = SimulationBuilder::new(ProtocolKind::VolumeLease {
            volume_timeout: Duration::from_secs_f64(tv_secs),
            object_timeout: Duration::from_secs_f64(t_secs),
        })
        .run(&trace);
        let analytic = Algorithm::VolumeLease.costs(&CostParams {
            object_timeout_secs: t_secs,
            volume_timeout_secs: tv_secs,
            inactive_discard_secs: f64::INFINITY,
            object_read_rate: c.object_read_rate(),
            volume_read_rate: c.volume_read_rate(),
            clients_caching: u64::from(c.clients),
            clients_with_object_lease: u64::from(c.clients),
            clients_with_volume_lease: u64::from(c.clients),
            clients_recently_inactive: 0,
            clock_skew_bound_secs: 0.0,
        });
        let got = report.messages_per_read();
        let want = analytic.read_cost_messages();
        assert!(
            (got - want).abs() / want < 0.10,
            "simulated {got} vs analytic {want}"
        );
    }

    /// Poll(t) with writes must go stale roughly (t/2)·W of the time
    /// while Lease(t) stays at zero — the consistency contrast of Table 1.
    #[test]
    fn poll_goes_stale_lease_does_not() {
        let c = UniformConfig {
            write_period: Some(Duration::from_secs(200)),
            ..cfg()
        };
        let trace = uniform_trace(&c);
        let poll = SimulationBuilder::new(ProtocolKind::Poll {
            timeout: Duration::from_secs(100),
        })
        .run(&trace);
        let lease = SimulationBuilder::new(ProtocolKind::Lease {
            timeout: Duration::from_secs(100),
        })
        .run(&trace);
        assert!(poll.summary.stale_reads > 0);
        assert_eq!(lease.summary.stale_reads, 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_read_period_rejected() {
        let mut c = cfg();
        c.read_period = Duration::ZERO;
        let _ = uniform_trace(&c);
    }
}
