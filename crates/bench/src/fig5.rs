//! Figure 5: total client↔server messages vs. object timeout `t`.
//!
//! Seven lines, as in the paper: `Poll(t)`, `Callback` (flat in `t`),
//! `Lease(t)`, `Volume(10, t)`, `Volume(100, t)`, `Delay(10, t, ∞)`, and
//! `Delay(100, t, ∞)` — plus the `SelfInval(t, 1)` extension column —
//! swept over `t ∈ {10¹ … 10⁷}` seconds. The expected
//! shape: lease-family lines fall as `t` grows (fewer renewals), then
//! flatten/rise once invalidations dominate; `Delay` falls monotonically;
//! `Poll` falls monotonically but trades staleness for it.

use crate::output::Table;
use crate::{par, secs, SweepStats, TIMEOUT_SWEEP_SECS};
use vl_core::{ProtocolKind, SimulationBuilder};
use vl_types::Duration;
use vl_workload::{Trace, TraceGenerator, WorkloadConfig};

/// One plotted point.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// The line this point belongs to (e.g. `"Volume(10, t)"`).
    pub line: String,
    /// The swept object timeout, seconds.
    pub t_secs: u64,
    /// Total one-way messages over the whole trace.
    pub messages: u64,
    /// Total bytes (the §5.1 byte-traffic variant of the figure).
    pub bytes: u64,
    /// Fraction of reads served stale (non-zero only for Poll).
    pub stale_fraction: f64,
}

/// A named line family: label plus a constructor from the swept `t`.
pub type Line = (&'static str, Box<dyn Fn(Duration) -> ProtocolKind>);

/// The seven line families of Figure 5 plus the self-invalidation
/// extension, parameterized by the swept `t`.
pub fn lines() -> Vec<Line> {
    vec![
        (
            "Poll(t)",
            Box::new(|t| ProtocolKind::Poll { timeout: t })
                as Box<dyn Fn(Duration) -> ProtocolKind>,
        ),
        ("Callback", Box::new(|_| ProtocolKind::Callback)),
        ("Lease(t)", Box::new(|t| ProtocolKind::Lease { timeout: t })),
        (
            "SelfInval(t, 1)",
            Box::new(|t| ProtocolKind::SelfInval {
                timeout: t,
                skew_bound: secs(1),
            }),
        ),
        (
            "Volume(10, t)",
            Box::new(|t| ProtocolKind::VolumeLease {
                volume_timeout: secs(10),
                object_timeout: t,
            }),
        ),
        (
            "Volume(100, t)",
            Box::new(|t| ProtocolKind::VolumeLease {
                volume_timeout: secs(100),
                object_timeout: t,
            }),
        ),
        (
            "Delay(10, t, inf)",
            Box::new(|t| ProtocolKind::DelayedInvalidation {
                volume_timeout: secs(10),
                object_timeout: t,
                inactive_discard: Duration::MAX,
            }),
        ),
        (
            "Delay(100, t, inf)",
            Box::new(|t| ProtocolKind::DelayedInvalidation {
                volume_timeout: secs(100),
                object_timeout: t,
                inactive_discard: Duration::MAX,
            }),
        ),
    ]
}

/// Runs the full sweep over `trace` on up to `threads` workers.
///
/// Each (line, timeout) grid point is one independent simulation; the
/// grid is fanned out through [`par::map`] over the shared trace and
/// results come back in grid order, so the rows are identical for any
/// thread count.
pub fn run_on(trace: &Trace, timeouts: &[u64], threads: usize) -> Vec<Row> {
    let grid: Vec<(&'static str, u64, ProtocolKind)> = lines()
        .iter()
        .flat_map(|(name, kind_of)| timeouts.iter().map(|&t| (*name, t, kind_of(secs(t)))))
        .collect();
    par::map(&grid, threads, |&(name, t, kind)| {
        let report = SimulationBuilder::new(kind).run(trace);
        Row {
            line: name.to_owned(),
            t_secs: t,
            messages: report.summary.messages,
            bytes: report.summary.bytes,
            stale_fraction: report.summary.stale_fraction,
        }
    })
}

/// Generates the trace for `cfg` and runs the standard sweep, reporting
/// aggregate throughput alongside the rows.
pub fn run(cfg: &WorkloadConfig, threads: usize) -> (Vec<Row>, SweepStats) {
    let trace = TraceGenerator::new(cfg.clone()).generate();
    let started = std::time::Instant::now();
    let rows = run_on(&trace, &TIMEOUT_SWEEP_SECS, threads);
    let stats = SweepStats {
        simulations: rows.len(),
        events_processed: trace.events().len() as u64 * rows.len() as u64,
        elapsed: started.elapsed(),
        threads,
    };
    (rows, stats)
}

/// Formats rows as the printed figure table. `metric` orders the y
/// column first: `"messages"` (the paper's Figure 5) or `"bytes"`
/// (§5.1's byte-traffic variant); both are always emitted.
pub fn table(rows: &[Row], metric: &str) -> Table {
    let byte_first = metric == "bytes";
    let (a, b) = if byte_first {
        ("bytes", "messages")
    } else {
        ("messages", "bytes")
    };
    let mut t = Table::new(["line", "t_secs", a, b, "stale_frac"]);
    for r in rows {
        let (x, y) = if byte_first {
            (r.bytes, r.messages)
        } else {
            (r.messages, r.bytes)
        };
        t.push([
            r.line.clone(),
            r.t_secs.to_string(),
            x.to_string(),
            y.to_string(),
            format!("{:.4}", r.stale_fraction),
        ]);
    }
    t
}

/// The paper's headline comparisons (§5.1): given the sweep rows, returns
/// (volume_vs_lease, delay_vs_lease) message savings at the best
/// configuration whose write-delay bound is ≤ `bound_secs`.
///
/// For `Lease(t)` the bound forces `t = bound_secs`; the volume
/// algorithms may use any swept `t` because their bound is `t_v`.
pub fn savings_at_bound(rows: &[Row], bound_secs: u64) -> Option<(f64, f64)> {
    let lease = rows
        .iter()
        .find(|r| r.line == "Lease(t)" && r.t_secs == bound_secs)?
        .messages as f64;
    let volume_line = format!("Volume({bound_secs}, t)");
    let delay_line = format!("Delay({bound_secs}, t, inf)");
    let best = |line: &str| -> Option<u64> {
        rows.iter()
            .filter(|r| r.line == line)
            .map(|r| r.messages)
            .min()
    };
    let volume = best(&volume_line)? as f64;
    let delay = best(&delay_line)? as f64;
    Some((1.0 - volume / lease, 1.0 - delay / lease))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_rows() -> Vec<Row> {
        let trace = TraceGenerator::new(WorkloadConfig::smoke()).generate();
        run_on(&trace, &[10, 1000, 100_000], 2)
    }

    #[test]
    fn produces_all_lines_and_timeouts() {
        let rows = smoke_rows();
        assert_eq!(rows.len(), 8 * 3);
        assert!(rows.iter().all(|r| r.messages > 0));
    }

    #[test]
    fn callback_is_flat_in_t() {
        let rows = smoke_rows();
        let cb: Vec<u64> = rows
            .iter()
            .filter(|r| r.line == "Callback")
            .map(|r| r.messages)
            .collect();
        assert!(cb.windows(2).all(|w| w[0] == w[1]), "{cb:?}");
    }

    #[test]
    fn lease_messages_fall_as_t_grows_initially() {
        let rows = smoke_rows();
        let lease: Vec<u64> = rows
            .iter()
            .filter(|r| r.line == "Lease(t)")
            .map(|r| r.messages)
            .collect();
        assert!(
            lease[0] > lease[1],
            "longer leases must cut renewals: {lease:?}"
        );
    }

    #[test]
    fn only_poll_is_ever_stale() {
        let rows = smoke_rows();
        for r in &rows {
            if r.line != "Poll(t)" {
                assert_eq!(r.stale_fraction, 0.0, "{}", r.line);
            }
        }
        assert!(
            rows.iter()
                .any(|r| r.line == "Poll(t)" && r.stale_fraction > 0.0),
            "long poll windows must serve stale data"
        );
    }

    #[test]
    fn volume_lease_costs_more_messages_than_plain_lease_at_same_t() {
        let rows = smoke_rows();
        for &t in &[1000u64, 100_000] {
            let get = |line: &str| {
                rows.iter()
                    .find(|r| r.line == line && r.t_secs == t)
                    .unwrap()
                    .messages
            };
            assert!(
                get("Volume(10, t)") >= get("Lease(t)"),
                "volume renewals are pure overhead at equal t"
            );
            assert!(
                get("Volume(10, t)") >= get("Volume(100, t)"),
                "shorter volume leases renew more"
            );
        }
    }

    #[test]
    fn savings_at_bound_computes() {
        let rows = smoke_rows();
        let (vol, delay) = savings_at_bound(&rows, 10).expect("lease(10) swept");
        // With a 10 s write-delay bound the volume algorithms beat
        // Lease(10) decisively (the paper reports 32% / 39%).
        assert!(vol > 0.0, "volume saving {vol}");
        assert!(
            delay >= vol,
            "delay {delay} at least as good as volume {vol}"
        );
    }

    #[test]
    fn table_renders_both_metrics() {
        let rows = smoke_rows();
        let t1 = table(&rows, "messages");
        let t2 = table(&rows, "bytes");
        assert_eq!(t1.len(), rows.len());
        assert_eq!(t2.len(), rows.len());
        assert!(t1.render().contains("Lease(t)"));
    }
}
