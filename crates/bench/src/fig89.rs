//! Figures 8–9: bursts of load at the most heavily loaded server.
//!
//! A cumulative histogram: for each algorithm, how many 1-second periods
//! saw at least *x* messages sent or received at the busiest server.
//! Figure 8 uses the default write workload; Figure 9 the "bursty write"
//! variant (`k ~ Exp(10)` co-writes per write), which blows up the
//! invalidation bursts of `Callback` and `Volume` but not of `Delay`.
//!
//! Algorithm configurations follow §5.3: the polling/object-lease
//! baselines use *short* timeouts (their load is renewal bursts on
//! reads); `Callback`, `Volume`, and `Delay` use *long* object leases
//! (their load is invalidation bursts on writes — except `Delay`, which
//! defers them).

use crate::output::Table;
use crate::{par, secs, SweepStats};
use vl_core::{ProtocolKind, SimulationBuilder};
use vl_metrics::LoadHistogram;
use vl_types::{Duration, ServerId};
use vl_workload::{TraceGenerator, WorkloadConfig, WriteModelConfig};

/// Short timeout for the poll/lease baselines, seconds.
pub const SHORT_T_SECS: u64 = 100;
/// Long object-lease timeout for the server-driven algorithms, seconds.
pub const LONG_T_SECS: u64 = 1_000_000;

/// One algorithm's full cumulative curve.
#[derive(Clone, Debug, PartialEq)]
pub struct Curve {
    /// Line label.
    pub line: String,
    /// The measured (busiest) server.
    pub server: ServerId,
    /// `(load x, number of 1-second periods with load ≥ x)` points.
    pub points: Vec<(u64, u64)>,
    /// Peak 1-second load.
    pub peak: u64,
}

/// The algorithm configurations of §5.3.
pub fn lines() -> Vec<(&'static str, ProtocolKind)> {
    vec![
        (
            "Poll(100)",
            ProtocolKind::Poll {
                timeout: secs(SHORT_T_SECS),
            },
        ),
        (
            "Lease(100)",
            ProtocolKind::Lease {
                timeout: secs(SHORT_T_SECS),
            },
        ),
        ("Callback", ProtocolKind::Callback),
        (
            "Volume(10, 1e6)",
            ProtocolKind::VolumeLease {
                volume_timeout: secs(10),
                object_timeout: secs(LONG_T_SECS),
            },
        ),
        (
            "Delay(10, 1e6, inf)",
            ProtocolKind::DelayedInvalidation {
                volume_timeout: secs(10),
                object_timeout: secs(LONG_T_SECS),
                inactive_discard: Duration::MAX,
            },
        ),
        (
            "SelfInval(1e6, 1)",
            ProtocolKind::SelfInval {
                timeout: secs(LONG_T_SECS),
                skew_bound: secs(1),
            },
        ),
    ]
}

/// Runs the experiment on up to `threads` workers. With `bursty` set,
/// writes use the Figure 9 co-write model; otherwise the default model
/// (Figure 8). One worker per algorithm line, sharing the trace.
pub fn run(cfg: &WorkloadConfig, bursty: bool, threads: usize) -> (Vec<Curve>, SweepStats) {
    let mut cfg = cfg.clone();
    cfg.writes = if bursty {
        WriteModelConfig {
            burst_mean: Some(10.0),
            ..cfg.writes
        }
    } else {
        WriteModelConfig {
            burst_mean: None,
            ..cfg.writes
        }
    };
    let trace = TraceGenerator::new(cfg).generate();
    let busiest = trace.servers_by_popularity()[0].0;
    let grid = lines();
    let started = std::time::Instant::now();
    let curves = par::map(&grid, threads, |&(name, kind)| {
        let report = SimulationBuilder::new(kind)
            .track_load([busiest])
            .run(&trace);
        let hist: LoadHistogram = report
            .metrics
            .load_histogram(busiest)
            .expect("busiest server is tracked");
        Curve {
            line: name.to_owned(),
            server: busiest,
            peak: hist.peak(),
            points: hist.cumulative_curve(),
        }
    });
    let stats = SweepStats {
        simulations: curves.len(),
        events_processed: trace.events().len() as u64 * curves.len() as u64,
        elapsed: started.elapsed(),
        threads,
    };
    (curves, stats)
}

/// Formats the curves row-per-point for printing/CSV.
pub fn table(curves: &[Curve]) -> Table {
    let mut t = Table::new(["line", "server", "load_msgs_per_sec", "periods_at_least"]);
    for c in curves {
        for &(x, y) in &c.points {
            t.push([
                c.line.clone(),
                c.server.to_string(),
                x.to_string(),
                y.to_string(),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_curves(bursty: bool) -> Vec<Curve> {
        run(&WorkloadConfig::smoke(), bursty, 2).0
    }

    #[test]
    fn produces_a_curve_per_line() {
        let curves = smoke_curves(false);
        assert_eq!(curves.len(), 6);
        for c in &curves {
            assert!(!c.points.is_empty(), "{} has an empty curve", c.line);
            assert!(c.peak > 0, "{}", c.line);
            // Cumulative curves are non-increasing in y.
            assert!(c.points.windows(2).all(|w| w[0].1 > w[1].1));
        }
    }

    #[test]
    fn delay_peak_no_higher_than_volume_peak() {
        let curves = smoke_curves(false);
        let peak = |line: &str| curves.iter().find(|c| c.line == line).unwrap().peak;
        assert!(
            peak("Delay(10, 1e6, inf)") <= peak("Volume(10, 1e6)"),
            "delaying invalidations cannot raise the write burst"
        );
    }

    #[test]
    fn bursty_writes_raise_volume_and_callback_peaks() {
        let normal = smoke_curves(false);
        let bursty = smoke_curves(true);
        let peak = |cs: &[Curve], line: &str| cs.iter().find(|c| c.line == line).unwrap().peak;
        // Co-written volumes multiply simultaneous invalidations.
        assert!(
            peak(&bursty, "Volume(10, 1e6)") >= peak(&normal, "Volume(10, 1e6)"),
            "bursty {} vs normal {}",
            peak(&bursty, "Volume(10, 1e6)"),
            peak(&normal, "Volume(10, 1e6)")
        );
        assert!(peak(&bursty, "Callback") >= peak(&normal, "Callback"));
    }

    #[test]
    fn self_inval_writes_produce_no_bursts() {
        // With no invalidation fan-out, the busiest server's peak under
        // self-invalidation cannot exceed the volume-lease peak, whose
        // load includes the same renewals plus write bursts.
        let curves = smoke_curves(true);
        let peak = |line: &str| curves.iter().find(|c| c.line == line).unwrap().peak;
        assert!(
            peak("SelfInval(1e6, 1)") <= peak("Volume(10, 1e6)"),
            "self-inval {} vs volume {}",
            peak("SelfInval(1e6, 1)"),
            peak("Volume(10, 1e6)")
        );
    }

    #[test]
    fn table_has_row_per_point() {
        let curves = smoke_curves(false);
        let total: usize = curves.iter().map(|c| c.points.len()).sum();
        assert_eq!(table(&curves).len(), total);
    }
}
