//! Minimal argument handling shared by the experiment binaries.
//!
//! Every binary accepts:
//!
//! ```text
//! --preset smoke|medium|paper   workload scale (default: medium;
//!                               `full` is an alias for `paper`)
//! --scale N                     multiply the preset's objects and
//!                               reads by N (10 ≈ a 10x BU-size trace)
//! --seed N                      override the workload seed
//! --csv PATH                    also write the rows as CSV
//! --threads N                   sweep worker threads (default: all
//!                               cores; VL_THREADS overrides the default)
//! --trace-out PATH              additionally replay the figure's
//!                               representative configurations with event
//!                               tracing on, writing a JSONL protocol
//!                               trace for `vl report`
//! ```

use std::path::PathBuf;
use std::process::exit;
use vl_core::{ProtocolKind, SimulationBuilder};
use vl_metrics::{JsonlSink, TraceSink};
use vl_workload::{TraceGenerator, WorkloadConfig, WorkloadPreset};

/// Parsed common options.
#[derive(Clone, Debug)]
pub struct CommonArgs {
    /// The selected workload configuration.
    pub config: WorkloadConfig,
    /// Optional CSV output path.
    pub csv: Option<PathBuf>,
    /// Worker threads for parameter sweeps (resolved: `--threads`, then
    /// `VL_THREADS`, then the machine's available parallelism).
    pub threads: usize,
    /// Optional JSONL protocol-trace output path (`--trace-out`).
    pub trace_out: Option<PathBuf>,
    /// Remaining unrecognized arguments (binary-specific flags).
    pub rest: Vec<String>,
}

/// Parses `std::env::args`, printing usage and exiting on `--help` or a
/// malformed invocation.
pub fn parse(binary: &str, extra_help: &str) -> CommonArgs {
    let mut preset = WorkloadPreset::Medium;
    let mut scale: u32 = 1;
    let mut seed: Option<u64> = None;
    let mut csv: Option<PathBuf> = None;
    let mut threads: Option<usize> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut rest = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!(
                    "usage: {binary} [--preset smoke|medium|paper|full] [--scale N] [--seed N] [--csv PATH] [--threads N] [--trace-out PATH]{extra_help}"
                );
                exit(0);
            }
            "--preset" => {
                let v = args.next().unwrap_or_default();
                preset = match v.as_str() {
                    "smoke" => WorkloadPreset::Smoke,
                    "medium" => WorkloadPreset::Medium,
                    // "full" reads better in benchmark scripts: the whole
                    // paper-scale workload, nothing held back.
                    "paper" | "full" => WorkloadPreset::Paper,
                    other => {
                        eprintln!("unknown preset '{other}' (want smoke|medium|paper|full)");
                        exit(2);
                    }
                };
            }
            "--scale" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => scale = n,
                _ => {
                    eprintln!("--scale needs a positive integer");
                    exit(2);
                }
            },
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = Some(s),
                None => {
                    eprintln!("--seed needs an integer");
                    exit(2);
                }
            },
            "--csv" => match args.next() {
                Some(p) => csv = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--csv needs a path");
                    exit(2);
                }
            },
            "--threads" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => threads = Some(n),
                _ => {
                    eprintln!("--threads needs a positive integer");
                    exit(2);
                }
            },
            "--trace-out" => match args.next() {
                Some(p) => trace_out = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--trace-out needs a path");
                    exit(2);
                }
            },
            other => rest.push(other.to_owned()),
        }
    }
    let mut config = WorkloadConfig::preset(preset).scaled(scale);
    if let Some(s) = seed {
        config.seed = s;
    }
    CommonArgs {
        config,
        csv,
        threads: crate::par::thread_count(threads),
        trace_out,
        rest,
    }
}

/// If `--trace-out` was given, replays each protocol in `kinds` over a
/// freshly generated trace for `args.config` with event tracing on,
/// appending every run to one JSONL file (one `{"run":...}` label line
/// per protocol, from the protocol's `Display`).
///
/// The replays run inline, in order, on one thread — tracing is for
/// inspection, not throughput, and this keeps the file byte-identical
/// for any `--threads` value.
pub fn write_trace(args: &CommonArgs, kinds: &[ProtocolKind]) {
    let Some(path) = &args.trace_out else { return };
    let file = match std::fs::File::create(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot create {}: {e}", path.display());
            exit(1);
        }
    };
    let trace = TraceGenerator::new(args.config.clone()).generate();
    let mut sink: Box<dyn TraceSink> = Box::new(JsonlSink::new(file));
    for &kind in kinds {
        let (_report, s) = SimulationBuilder::new(kind).run_traced(&trace, sink);
        sink = s;
    }
    sink.flush();
    println!(
        "(protocol trace written to {}: {} runs — inspect with `vl report --trace {}`)",
        path.display(),
        kinds.len(),
        path.display()
    );
}

/// Prints a table and optionally writes the CSV, with a standard banner.
pub fn emit(title: &str, table: &crate::output::Table, csv: Option<&PathBuf>) {
    println!("# {title}");
    println!("{}", table.render());
    if let Some(path) = csv {
        match table.write_csv(path) {
            Ok(()) => println!("(csv written to {})", path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
    }
}
