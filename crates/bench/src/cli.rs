//! Minimal argument handling shared by the experiment binaries.
//!
//! Every binary accepts:
//!
//! ```text
//! --preset smoke|medium|paper   workload scale (default: medium)
//! --seed N                      override the workload seed
//! --csv PATH                    also write the rows as CSV
//! --threads N                   sweep worker threads (default: all
//!                               cores; VL_THREADS overrides the default)
//! ```

use std::path::PathBuf;
use std::process::exit;
use vl_workload::{WorkloadConfig, WorkloadPreset};

/// Parsed common options.
#[derive(Clone, Debug)]
pub struct CommonArgs {
    /// The selected workload configuration.
    pub config: WorkloadConfig,
    /// Optional CSV output path.
    pub csv: Option<PathBuf>,
    /// Worker threads for parameter sweeps (resolved: `--threads`, then
    /// `VL_THREADS`, then the machine's available parallelism).
    pub threads: usize,
    /// Remaining unrecognized arguments (binary-specific flags).
    pub rest: Vec<String>,
}

/// Parses `std::env::args`, printing usage and exiting on `--help` or a
/// malformed invocation.
pub fn parse(binary: &str, extra_help: &str) -> CommonArgs {
    let mut preset = WorkloadPreset::Medium;
    let mut seed: Option<u64> = None;
    let mut csv: Option<PathBuf> = None;
    let mut threads: Option<usize> = None;
    let mut rest = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!(
                    "usage: {binary} [--preset smoke|medium|paper] [--seed N] [--csv PATH] [--threads N]{extra_help}"
                );
                exit(0);
            }
            "--preset" => {
                let v = args.next().unwrap_or_default();
                preset = match v.as_str() {
                    "smoke" => WorkloadPreset::Smoke,
                    "medium" => WorkloadPreset::Medium,
                    "paper" => WorkloadPreset::Paper,
                    other => {
                        eprintln!("unknown preset '{other}' (want smoke|medium|paper)");
                        exit(2);
                    }
                };
            }
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = Some(s),
                None => {
                    eprintln!("--seed needs an integer");
                    exit(2);
                }
            },
            "--csv" => match args.next() {
                Some(p) => csv = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--csv needs a path");
                    exit(2);
                }
            },
            "--threads" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => threads = Some(n),
                _ => {
                    eprintln!("--threads needs a positive integer");
                    exit(2);
                }
            },
            other => rest.push(other.to_owned()),
        }
    }
    let mut config = WorkloadConfig::preset(preset);
    if let Some(s) = seed {
        config.seed = s;
    }
    CommonArgs {
        config,
        csv,
        threads: crate::par::thread_count(threads),
        rest,
    }
}

/// Prints a table and optionally writes the CSV, with a standard banner.
pub fn emit(title: &str, table: &crate::output::Table, csv: Option<&PathBuf>) {
    println!("# {title}");
    println!("{}", table.render());
    if let Some(path) = csv {
        match table.write_csv(path) {
            Ok(()) => println!("(csv written to {})", path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
    }
}
