//! Experiment harness: regenerates every table and figure of the paper.
//!
//! Each experiment is a pure function from a [`vl_workload::WorkloadConfig`]
//! (or a uniform synthetic workload, for Table 1) to a vector of typed
//! rows. The `src/bin/*` binaries print the rows as aligned tables and
//! optional CSV; the Criterion benches in `benches/` time the underlying
//! simulations at smoke scale and print the same rows once per run.
//!
//! | paper artifact | function | binary |
//! |----------------|----------|--------|
//! | Table 1 validation | [`table1::run`] | `table1` |
//! | Figure 5 (messages vs t) | [`fig5::run`] | `fig5` |
//! | Figures 6–7 (server state) | [`fig67::run`] | `fig6`, `fig7` |
//! | Figures 8–9 (load bursts) | [`fig89::run`] | `fig8`, `fig9` |
//! | t_v ablation (ours) | [`ablation::volume_timeout_sweep`] | `ablation_tv` |
//! | d ablation (ours) | [`ablation::inactive_discard_sweep`] | `ablation_d` |

pub mod ablation;
pub mod cli;
pub mod fig5;
pub mod fig67;
pub mod fig89;
pub mod output;
pub mod table1;
pub mod uniform;

use vl_types::Duration;

/// The object-timeout sweep used on the x-axis of Figures 5–7
/// (log scale, 10¹..10⁷ seconds).
pub const TIMEOUT_SWEEP_SECS: [u64; 7] = [10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];

/// Shorthand used throughout the harness.
pub fn secs(s: u64) -> Duration {
    Duration::from_secs(s)
}
