//! Experiment harness: regenerates every table and figure of the paper.
//!
//! Each experiment is a pure function from a [`vl_workload::WorkloadConfig`]
//! (or a uniform synthetic workload, for Table 1) to a vector of typed
//! rows. The `src/bin/*` binaries print the rows as aligned tables and
//! optional CSV; the Criterion benches in `benches/` time the underlying
//! simulations at smoke scale and print the same rows once per run.
//!
//! | paper artifact | function | binary |
//! |----------------|----------|--------|
//! | Table 1 validation | [`table1::run`] | `table1` |
//! | Figure 5 (messages vs t) | [`fig5::run`] | `fig5` |
//! | Figures 6–7 (server state) | [`fig67::run`] | `fig6`, `fig7` |
//! | Figures 8–9 (load bursts) | [`fig89::run`] | `fig8`, `fig9` |
//! | t_v ablation (ours) | [`ablation::volume_timeout_sweep`] | `ablation_tv` |
//! | d ablation (ours) | [`ablation::inactive_discard_sweep`] | `ablation_d` |
//!
//! # Layering
//!
//! The harness sits entirely on the pure layers of DESIGN.md §7
//! (workload → simulator → metrics); binaries add only argument
//! parsing, table rendering, and the optional `--trace-out` JSONL
//! protocol trace for `vl report` (see [`cli::write_trace`]).

pub mod ablation;
pub mod cli;
pub mod fig5;
pub mod fig67;
pub mod fig89;
pub mod output;
pub mod par;
pub mod stopwatch;
pub mod table1;
pub mod uniform;

use vl_types::Duration;

/// The object-timeout sweep used on the x-axis of Figures 5–7
/// (log scale, 10¹..10⁷ seconds).
pub const TIMEOUT_SWEEP_SECS: [u64; 7] = [10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];

/// Shorthand used throughout the harness.
pub fn secs(s: u64) -> Duration {
    Duration::from_secs(s)
}

/// Aggregate throughput of one sweep: how many simulations ran, the
/// trace events they processed in total (the sum of every run's
/// [`vl_core::Report::events_processed`] — each simulation replays the
/// whole trace), and the sweep's wall-clock. The binaries print this so
/// parallel speedups are visible in every run.
#[derive(Clone, Debug)]
pub struct SweepStats {
    /// Simulations executed.
    pub simulations: usize,
    /// Total trace events processed across all simulations.
    pub events_processed: u64,
    /// Wall-clock time for the whole sweep (trace generation excluded).
    pub elapsed: std::time::Duration,
    /// Worker threads the sweep fanned out over.
    pub threads: usize,
}

impl SweepStats {
    /// Aggregate events per wall-clock second across the sweep.
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.events_processed as f64 / secs
        } else {
            0.0
        }
    }

    /// One printable summary line.
    pub fn summary(&self) -> String {
        let mut line = format!(
            "{} simulations · {} events · {:.3}s wall · {:.0} events/s · {} thread(s)",
            self.simulations,
            self.events_processed,
            self.elapsed.as_secs_f64(),
            self.events_per_sec(),
            self.threads
        );
        if let Some(rss) = peak_rss_bytes() {
            line.push_str(&format!(
                " · {:.1} MiB peak rss",
                rss as f64 / (1 << 20) as f64
            ));
        }
        line
    }
}

/// The process's peak resident set size in bytes (Linux `VmHWM`), or
/// `None` where `/proc` is unavailable. Printed with every sweep so the
/// `--scale` memory experiments (EXPERIMENTS.md "Raw speed") need no
/// external profiler.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib * 1024)
}
