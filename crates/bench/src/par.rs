//! Parallel fan-out of independent simulation jobs across OS threads.
//!
//! Every figure and table in the harness is a grid of *independent*
//! `SimulationBuilder::run` calls over one immutable [`vl_workload::Trace`]:
//! (line, parameter) pairs that never observe each other. The executor
//! here runs that grid on a scoped thread pool, sharing the trace by
//! reference (no per-job clone) and collecting results keyed by grid
//! index so output ordering — and therefore every rendered table and
//! CSV — is byte-identical to the serial sweep.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

// Sharing a `&Trace` across worker threads is the whole point; make the
// build fail loudly if `Trace` ever loses `Sync` (e.g. by growing
// interior mutability).
const _: fn() = || {
    fn assert_sync<T: Sync>() {}
    assert_sync::<vl_workload::Trace>();
};

/// Resolves the worker count: an explicit request (CLI `--threads`)
/// wins, then the `VL_THREADS` environment variable, then
/// [`std::thread::available_parallelism`]. Always at least 1.
pub fn thread_count(explicit: Option<usize>) -> usize {
    explicit
        .or_else(|| {
            std::env::var("VL_THREADS")
                .ok()
                .and_then(|s| s.parse().ok())
        })
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Runs `jobs` jobs on up to `threads` scoped workers and returns their
/// results in job-index order.
///
/// `job` is called with each index in `0..jobs` exactly once. Workers
/// claim indices from a shared atomic counter, so long and short jobs
/// pack tightly; results land in their index's slot, making the output
/// independent of scheduling. With `threads <= 1` (or a single job) no
/// threads are spawned at all — the jobs run inline, which keeps the
/// serial path allocation-identical to the pre-parallel harness.
pub fn run_indexed<T, F>(jobs: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.max(1).min(jobs);
    if workers <= 1 {
        return (0..jobs).map(job).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..jobs).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let out = job(i);
                results.lock().expect("no panics while holding results")[i] = Some(out);
            });
        }
    });
    results
        .into_inner()
        .expect("workers joined")
        .into_iter()
        .map(|r| r.expect("every index claimed exactly once"))
        .collect()
}

/// Convenience wrapper: maps `job` over `items` in parallel, preserving
/// input order.
pub fn map<I, T, F>(items: &[I], threads: usize, job: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    run_indexed(items.len(), threads, |i| job(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        for threads in [1, 2, 4, 7] {
            let out = run_indexed(17, threads, |i| i * i);
            assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_jobs_is_empty() {
        let out: Vec<u32> = run_indexed(0, 8, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn map_matches_serial_map() {
        let items = vec!["a", "bb", "ccc"];
        let out = map(&items, 3, |s| s.len());
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn explicit_thread_count_wins() {
        assert_eq!(thread_count(Some(3)), 3);
        assert!(thread_count(None) >= 1);
    }
}
