//! Figures 6–7: average consistency state (bytes) at a server vs. `t`.
//!
//! Figure 6 reports the trace's most popular server, Figure 7 the 10th
//! most popular. Lines: `Callback` (flat), `Lease(t)`, `SelfInval(t, 1)`
//! (same deadline records as `Lease`, no callback set), `Volume(10, t)`,
//! `Delay(10, t, ∞)` (queues never discarded) and `Delay(10, t, 1h)`
//! (short discard — the configuration the paper argues can use *less*
//! state than everything else).

use crate::output::Table;
use crate::{par, secs, SweepStats, TIMEOUT_SWEEP_SECS};
use vl_core::{ProtocolKind, SimulationBuilder};
use vl_types::{Duration, ServerId};
use vl_workload::{Trace, TraceGenerator, WorkloadConfig};

/// One plotted point.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// Line label.
    pub line: String,
    /// Swept object timeout, seconds.
    pub t_secs: u64,
    /// Popularity rank of the measured server (1 = most popular).
    pub server_rank: usize,
    /// The measured server.
    pub server: ServerId,
    /// Time-weighted average consistency state, bytes.
    pub avg_state_bytes: f64,
}

/// A named line family: label plus a constructor from the swept `t`.
pub type Line = (&'static str, Box<dyn Fn(Duration) -> ProtocolKind>);

/// The line families of Figures 6–7.
pub fn lines() -> Vec<Line> {
    vec![
        (
            "Callback",
            Box::new(|_| ProtocolKind::Callback) as Box<dyn Fn(Duration) -> ProtocolKind>,
        ),
        ("Lease(t)", Box::new(|t| ProtocolKind::Lease { timeout: t })),
        (
            "SelfInval(t, 1)",
            Box::new(|t| ProtocolKind::SelfInval {
                timeout: t,
                skew_bound: secs(1),
            }),
        ),
        (
            "Volume(10, t)",
            Box::new(|t| ProtocolKind::VolumeLease {
                volume_timeout: secs(10),
                object_timeout: t,
            }),
        ),
        (
            "Delay(10, t, inf)",
            Box::new(|t| ProtocolKind::DelayedInvalidation {
                volume_timeout: secs(10),
                object_timeout: t,
                inactive_discard: Duration::MAX,
            }),
        ),
        (
            "Delay(10, t, 1h)",
            Box::new(|t| ProtocolKind::DelayedInvalidation {
                volume_timeout: secs(10),
                object_timeout: t,
                inactive_discard: secs(3600),
            }),
        ),
    ]
}

/// Runs the sweep measuring the server at popularity `rank`
/// (1 = most popular → Figure 6; 10 → Figure 7).
///
/// # Panics
///
/// Panics if the trace has fewer than `rank` active servers.
pub fn run_on(trace: &Trace, rank: usize, timeouts: &[u64], threads: usize) -> Vec<Row> {
    let ranked = trace.servers_by_popularity();
    assert!(
        ranked.len() >= rank && rank >= 1,
        "trace has only {} active servers, need rank {rank}",
        ranked.len()
    );
    let server = ranked[rank - 1].0;
    let grid: Vec<(&'static str, u64, ProtocolKind)> = lines()
        .iter()
        .flat_map(|(name, kind_of)| timeouts.iter().map(|&t| (*name, t, kind_of(secs(t)))))
        .collect();
    par::map(&grid, threads, |&(name, t, kind)| {
        let report = SimulationBuilder::new(kind).run(trace);
        Row {
            line: name.to_owned(),
            t_secs: t,
            server_rank: rank,
            server,
            avg_state_bytes: report.avg_state_bytes(server),
        }
    })
}

/// Generates the trace and runs the standard sweep for the given rank,
/// reporting aggregate throughput alongside the rows.
pub fn run(cfg: &WorkloadConfig, rank: usize, threads: usize) -> (Vec<Row>, SweepStats) {
    let trace = TraceGenerator::new(cfg.clone()).generate();
    let started = std::time::Instant::now();
    let rows = run_on(&trace, rank, &TIMEOUT_SWEEP_SECS, threads);
    let stats = SweepStats {
        simulations: rows.len(),
        events_processed: trace.events().len() as u64 * rows.len() as u64,
        elapsed: started.elapsed(),
        threads,
    };
    (rows, stats)
}

/// Formats rows for printing.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(["line", "t_secs", "server", "avg_state_bytes"]);
    for r in rows {
        t.push([
            r.line.clone(),
            r.t_secs.to_string(),
            r.server.to_string(),
            format!("{:.1}", r.avg_state_bytes),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_rows(rank: usize) -> Vec<Row> {
        let trace = TraceGenerator::new(WorkloadConfig::smoke()).generate();
        run_on(&trace, rank, &[10, 1000, 100_000], 2)
    }

    #[test]
    fn produces_rows_for_all_lines() {
        let rows = smoke_rows(1);
        assert_eq!(rows.len(), 6 * 3);
        assert!(rows.iter().all(|r| r.avg_state_bytes >= 0.0));
    }

    #[test]
    fn lease_state_grows_with_t() {
        let rows = smoke_rows(1);
        let lease: Vec<f64> = rows
            .iter()
            .filter(|r| r.line == "Lease(t)")
            .map(|r| r.avg_state_bytes)
            .collect();
        assert!(
            lease[0] < lease[2],
            "longer leases hold records longer: {lease:?}"
        );
    }

    #[test]
    fn short_leases_use_less_state_than_callback() {
        let rows = smoke_rows(1);
        let get = |line: &str, t: u64| {
            rows.iter()
                .find(|r| r.line == line && r.t_secs == t)
                .unwrap()
                .avg_state_bytes
        };
        assert!(
            get("Lease(t)", 10) < get("Callback", 10),
            "the paper's short-timeout state advantage"
        );
    }

    #[test]
    fn volume_adds_little_state_over_lease() {
        let rows = smoke_rows(1);
        let get = |line: &str, t: u64| {
            rows.iter()
                .find(|r| r.line == line && r.t_secs == t)
                .unwrap()
                .avg_state_bytes
        };
        let lease = get("Lease(t)", 100_000);
        let volume = get("Volume(10, t)", 100_000);
        assert!(volume >= lease);
        assert!(
            volume < lease * 1.5,
            "short volume leases are cheap: {volume} vs {lease}"
        );
    }

    #[test]
    fn tenth_server_has_less_state_than_first() {
        let r1 = smoke_rows(1);
        let r10 = smoke_rows(10);
        let sum = |rows: &[Row]| -> f64 { rows.iter().map(|r| r.avg_state_bytes).sum() };
        assert!(sum(&r10) < sum(&r1), "less popular ⇒ less lease state");
    }

    #[test]
    #[should_panic(expected = "need rank")]
    fn absurd_rank_panics() {
        let _ = smoke_rows(10_000);
    }

    #[test]
    fn table_renders() {
        let rows = smoke_rows(1);
        assert!(table(&rows).render().contains("avg_state_bytes"));
    }
}
