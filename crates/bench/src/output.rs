//! Aligned-table and CSV output for experiment rows.

use std::fmt::Display;
use std::fs;
use std::io;
use std::path::Path;

/// A rectangular result set: header plus stringified rows.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column names.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push<S: Display>(&mut self, row: impl IntoIterator<Item = S>) {
        let row: Vec<String> = row.into_iter().map(|c| c.to_string()).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned, human-readable table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Serializes to CSV (RFC-4180-style quoting for commas/quotes).
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        fs::write(path, self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(["alg", "msgs"]);
        t.push(["Lease(10)", "123456"]);
        t.push(["Callback", "7"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].ends_with("123456"));
        assert!(lines[3].ends_with("     7"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new(["a", "b"]);
        t.push(["x,y", "pl\"ain"]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n\"x,y\",\"pl\"\"ain\"\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = Table::new(["a", "b"]);
        t.push(["only-one"]);
    }

    #[test]
    fn write_csv_creates_dirs() {
        let dir = std::env::temp_dir().join("vl_bench_output_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.csv");
        let mut t = Table::new(["x"]);
        t.push(["1"]);
        t.write_csv(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "x\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
