//! Criterion bench + regeneration for Figures 8–9 (load bursts).

use criterion::{criterion_group, criterion_main, Criterion};
use vl_bench::fig89;
use vl_workload::WorkloadConfig;

fn bench(c: &mut Criterion) {
    let cfg = WorkloadConfig::smoke();
    for (fig, bursty) in [("Figure 8 (default writes)", false), ("Figure 9 (bursty writes)", true)] {
        let curves = fig89::run(&cfg, bursty);
        println!("\n# {fig} (smoke preset) — peak 1-second loads at busiest server");
        for curve in &curves {
            println!("peak {:>6} msg/s  {}", curve.peak, curve.line);
        }
    }

    c.bench_function("fig8_9/burst_histogram_default", |b| {
        b.iter(|| fig89::run(&cfg, false))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
