//! Bench + regeneration for Figures 8–9 (load bursts).

use vl_bench::stopwatch::bench_fn;
use vl_bench::{fig89, par};
use vl_workload::WorkloadConfig;

fn main() {
    let threads = par::thread_count(None);
    let cfg = WorkloadConfig::smoke();
    for (fig, bursty) in [
        ("Figure 8 (default writes)", false),
        ("Figure 9 (bursty writes)", true),
    ] {
        let (curves, stats) = fig89::run(&cfg, bursty, threads);
        println!("\n# {fig} (smoke preset) — peak 1-second loads at busiest server");
        for curve in &curves {
            println!("peak {:>6} msg/s  {}", curve.peak, curve.line);
        }
        println!("{}", stats.summary());
    }

    bench_fn("fig8_9/burst_histogram_default", 10, || {
        fig89::run(&cfg, false, 1)
    });
}
