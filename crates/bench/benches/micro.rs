//! Microbenchmarks for the hot-path data structures and the dense
//! per-event protocol state (`Poll::on_read`, `DelayedInvalidation::on_read`).

use vl_bench::stopwatch::{bench_fn, black_box};
use vl_core::{Ctx, DelayedInvalidation, LeaseTrack, Poll, Protocol, VolumeLeaseTable};
use vl_metrics::Metrics;
use vl_types::{ClientId, Duration, LeaseSet, ObjectId, ServerId, Timestamp, Version, VolumeId};
use vl_workload::dist::Zipf;
use vl_workload::{Universe, UniverseBuilder};

/// A small dense universe: 4 servers × 4 volumes × 16 objects.
fn dense_universe() -> Universe {
    let mut b = UniverseBuilder::new();
    for s in 0..4u32 {
        for _ in 0..4 {
            let v = b.add_volume(ServerId(s));
            for _ in 0..16 {
                b.add_object(v, 1_000);
            }
        }
    }
    b.build()
}

/// A deterministic dense read stream: every (client, object) pair in a
/// strided order, with timestamps advancing one second per event. This
/// exercises slot growth, the hit path, and the renewal path.
fn dense_reads(clients: u32, objects: u64, events: usize) -> Vec<(Timestamp, ClientId, ObjectId)> {
    (0..events)
        .map(|i| {
            let i = i as u32;
            (
                Timestamp::from_secs(u64::from(i)),
                ClientId(i * 7 % clients),
                ObjectId(u64::from(i) * 13 % objects),
            )
        })
        .collect()
}

fn main() {
    let now = Timestamp::from_secs(100);
    bench_fn("micro/lease_set_grant_check_revoke", 20, || {
        let mut set = LeaseSet::new();
        for i in 0..64u32 {
            set.grant(ClientId(i), now + Duration::from_secs(u64::from(i)));
        }
        let valid = set.valid_count(now + Duration::from_secs(32));
        for i in 0..64u32 {
            set.revoke(ClientId(i));
        }
        black_box(valid)
    });

    bench_fn("micro/zipf_sample_68k_ranks_x1000", 20, || {
        use rand::SeedableRng;
        let zipf = Zipf::new(68_665, 0.986);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut sum = 0usize;
        for _ in 0..1000 {
            sum += zipf.sample(&mut rng);
        }
        black_box(sum)
    });

    bench_fn("micro/event_queue_schedule_pop_1k", 20, || {
        use vl_sim::EventQueue;
        let mut q = EventQueue::new();
        for i in 0..1000u64 {
            q.schedule(Timestamp::from_millis(i * 7919 % 1000), i);
        }
        let mut sum = 0u64;
        while let Some((_, e)) = q.pop() {
            sum += e;
        }
        black_box(sum)
    });

    // The timing wheel at depth: a million pending events scattered
    // over ~70 simulated minutes touches every wheel level plus the
    // far-future heap, then drains back in timestamp order.
    bench_fn("micro/event_queue_schedule_pop_1m_pending", 5, || {
        use vl_sim::EventQueue;
        let mut q = EventQueue::new();
        for i in 0..1_000_000u64 {
            q.schedule(
                Timestamp::from_millis(i.wrapping_mul(2_654_435_761) % (1 << 22)),
                i,
            );
        }
        let mut sum = 0u64;
        while let Some((_, e)) = q.pop() {
            sum += e;
        }
        black_box(sum)
    });

    // The volume-lease probe both ways: the sorted-array LeaseTrack
    // (spilled to its heap vector by the 33-client holder set, binary
    // searched per probe) against the dense SoA VolumeLeaseTable
    // (multiply + load). Same grants, same probe stream, ~half the
    // probes landing on valid leases so the branch is unpredictable.
    let probe_now = Timestamp::from_secs(50);
    let mut setup_metrics = Metrics::new();
    let mut tracks: Vec<LeaseTrack> = (0..16).map(|_| LeaseTrack::new(ServerId(0))).collect();
    let mut table = VolumeLeaseTable::new(vec![ServerId(0); 16]);
    for c in 0..33u32 {
        for v in 0..16u32 {
            let exp = Timestamp::from_secs(40 + u64::from((c * 7 + v) % 30));
            tracks[v as usize].grant(ClientId(c), Timestamp::ZERO, exp, &mut setup_metrics);
            table.grant(
                ClientId(c),
                VolumeId(v),
                Timestamp::ZERO,
                exp,
                &mut setup_metrics,
            );
        }
    }
    bench_fn("micro/volume_lease_track_reads_64k", 20, || {
        let mut hits = 0u32;
        for i in 0..65_536u32 {
            let c = ClientId(i * 7 % 33);
            let v = (i * 13 % 16) as usize;
            hits += u32::from(tracks[v].is_valid(c, probe_now));
        }
        black_box(hits)
    });
    bench_fn("micro/volume_lease_table_reads_64k", 20, || {
        let mut hits = 0u32;
        for i in 0..65_536u32 {
            let c = ClientId(i * 7 % 33);
            let v = VolumeId(i * 13 % 16);
            hits += u32::from(table.is_valid(c, v, probe_now));
        }
        black_box(hits)
    });

    // The dense-state hot paths: drive on_read directly, no engine.
    let universe = dense_universe();
    let objects = universe.objects().len() as u64;
    let versions = vec![Version::FIRST; objects as usize];
    let reads = dense_reads(32, objects, 4_096);

    bench_fn("micro/poll_on_read_dense_4k_events", 20, || {
        let mut proto = Poll::new(Duration::from_secs(50), &universe);
        let mut metrics = Metrics::new();
        let mut ctx = Ctx {
            universe: &universe,
            versions: &versions,
            metrics: &mut metrics,
        };
        for &(at, client, object) in &reads {
            proto.on_read(at, client, object, &mut ctx);
        }
        black_box(metrics.total_messages())
    });

    bench_fn("micro/delay_on_read_dense_4k_events", 20, || {
        let mut proto = DelayedInvalidation::new(
            Duration::from_secs(10),
            Duration::from_secs(100_000),
            Duration::MAX,
            &universe,
        );
        let mut metrics = Metrics::new();
        let mut ctx = Ctx {
            universe: &universe,
            versions: &versions,
            metrics: &mut metrics,
        };
        for &(at, client, object) in &reads {
            proto.on_read(at, client, object, &mut ctx);
        }
        black_box(metrics.total_messages())
    });
}
