//! Microbenchmarks for the hot-path data structures.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vl_types::{ClientId, Duration, LeaseSet, Timestamp};
use vl_workload::dist::Zipf;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro");

    g.bench_function("lease_set_grant_check_revoke", |b| {
        let now = Timestamp::from_secs(100);
        b.iter(|| {
            let mut set = LeaseSet::new();
            for i in 0..64u32 {
                set.grant(ClientId(i), now + Duration::from_secs(u64::from(i)));
            }
            let valid = set.valid_count(now + Duration::from_secs(32));
            for i in 0..64u32 {
                set.revoke(ClientId(i));
            }
            black_box(valid)
        })
    });

    g.bench_function("zipf_sample_68k_ranks", |b| {
        use rand::SeedableRng;
        let zipf = Zipf::new(68_665, 0.986);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        b.iter(|| black_box(zipf.sample(&mut rng)))
    });

    g.bench_function("event_queue_schedule_pop_1k", |b| {
        use vl_sim::EventQueue;
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule(Timestamp::from_millis(i * 7919 % 1000), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum += e;
            }
            black_box(sum)
        })
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
