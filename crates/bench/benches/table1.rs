//! Bench + regeneration for Table 1 (analytic validation).

use vl_bench::stopwatch::bench_fn;
use vl_bench::{par, table1};

fn main() {
    let threads = par::thread_count(None);
    let (rows, stats) = table1::run(&table1::default_config(), threads);
    println!("\n# Table 1 validation (uniform workload)");
    println!("{}", table1::table(&rows).render());
    println!("{}", stats.summary());

    let cfg = table1::default_config();
    bench_fn("table1/uniform_validation_all_algorithms", 10, || {
        table1::run(&cfg, 1)
    });
}
