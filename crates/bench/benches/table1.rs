//! Criterion bench + regeneration for Table 1 (analytic validation).

use criterion::{criterion_group, criterion_main, Criterion};
use vl_bench::table1;

fn bench(c: &mut Criterion) {
    // Print the paper-style validation table once.
    let rows = table1::run(&table1::default_config());
    println!("\n# Table 1 validation (uniform workload)");
    println!("{}", table1::table(&rows).render());

    let cfg = table1::default_config();
    c.bench_function("table1/uniform_validation_all_algorithms", |b| {
        b.iter(|| table1::run(&cfg))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
