//! Bench + regeneration for Figure 5 (messages vs timeout): prints the
//! smoke-preset figure once, then times representative full-trace runs.

use vl_bench::stopwatch::bench_fn;
use vl_bench::{fig5, par};
use vl_core::{ProtocolKind, SimulationBuilder};
use vl_types::Duration;
use vl_workload::{TraceGenerator, WorkloadConfig};

fn main() {
    let threads = par::thread_count(None);
    let cfg = WorkloadConfig::smoke();
    let (rows, stats) = fig5::run(&cfg, threads);
    println!("\n# Figure 5 (smoke preset) — messages vs object timeout");
    println!("{}", fig5::table(&rows, "messages").render());
    for bound in [10u64, 100] {
        if let Some((vol, delay)) = fig5::savings_at_bound(&rows, bound) {
            println!(
                "write-delay bound {bound}s: Volume saves {:.0}%, Delay saves {:.0}% (paper: 32%/39% @10s, 30%/40% @100s)",
                vol * 100.0,
                delay * 100.0
            );
        }
    }
    println!("{}", stats.summary());

    let trace = TraceGenerator::new(cfg).generate();
    bench_fn("fig5/volume_lease_full_trace", 10, || {
        SimulationBuilder::new(ProtocolKind::VolumeLease {
            volume_timeout: Duration::from_secs(10),
            object_timeout: Duration::from_secs(100_000),
        })
        .run(&trace)
    });
    bench_fn("fig5/delayed_invalidation_full_trace", 10, || {
        SimulationBuilder::new(ProtocolKind::DelayedInvalidation {
            volume_timeout: Duration::from_secs(10),
            object_timeout: Duration::from_secs(100_000),
            inactive_discard: Duration::MAX,
        })
        .run(&trace)
    });
    bench_fn("fig5/lease_full_trace", 10, || {
        SimulationBuilder::new(ProtocolKind::Lease {
            timeout: Duration::from_secs(100_000),
        })
        .run(&trace)
    });
}
