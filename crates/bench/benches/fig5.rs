//! Criterion bench + regeneration for Figure 5 (messages vs timeout).

use criterion::{criterion_group, criterion_main, Criterion};
use vl_bench::fig5;
use vl_core::{ProtocolKind, SimulationBuilder};
use vl_types::Duration;
use vl_workload::{TraceGenerator, WorkloadConfig};

fn bench(c: &mut Criterion) {
    let cfg = WorkloadConfig::smoke();
    let rows = fig5::run(&cfg);
    println!("\n# Figure 5 (smoke preset) — messages vs object timeout");
    println!("{}", fig5::table(&rows, "messages").render());
    for bound in [10u64, 100] {
        if let Some((vol, delay)) = fig5::savings_at_bound(&rows, bound) {
            println!(
                "write-delay bound {bound}s: Volume saves {:.0}%, Delay saves {:.0}% (paper: 32%/39% @10s, 30%/40% @100s)",
                vol * 100.0,
                delay * 100.0
            );
        }
    }

    let trace = TraceGenerator::new(cfg).generate();
    let mut g = c.benchmark_group("fig5");
    g.bench_function("volume_lease_full_trace", |b| {
        b.iter(|| {
            SimulationBuilder::new(ProtocolKind::VolumeLease {
                volume_timeout: Duration::from_secs(10),
                object_timeout: Duration::from_secs(100_000),
            })
            .run(&trace)
        })
    });
    g.bench_function("delayed_invalidation_full_trace", |b| {
        b.iter(|| {
            SimulationBuilder::new(ProtocolKind::DelayedInvalidation {
                volume_timeout: Duration::from_secs(10),
                object_timeout: Duration::from_secs(100_000),
                inactive_discard: Duration::MAX,
            })
            .run(&trace)
        })
    });
    g.bench_function("lease_full_trace", |b| {
        b.iter(|| {
            SimulationBuilder::new(ProtocolKind::Lease {
                timeout: Duration::from_secs(100_000),
            })
            .run(&trace)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
