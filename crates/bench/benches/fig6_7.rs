//! Criterion bench + regeneration for Figures 6–7 (server state vs t).

use criterion::{criterion_group, criterion_main, Criterion};
use vl_bench::fig67;
use vl_workload::{TraceGenerator, WorkloadConfig};

fn bench(c: &mut Criterion) {
    let cfg = WorkloadConfig::smoke();
    for (fig, rank) in [("Figure 6", 1usize), ("Figure 7", 10)] {
        let rows = fig67::run(&cfg, rank);
        println!("\n# {fig} (smoke preset) — avg state at popularity rank {rank}");
        println!("{}", fig67::table(&rows).render());
    }

    let trace = TraceGenerator::new(cfg).generate();
    c.bench_function("fig6_7/state_sweep_one_timeout", |b| {
        b.iter(|| fig67::run_on(&trace, 1, &[10_000]))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
