//! Bench + regeneration for Figures 6–7 (server state vs t).

use vl_bench::stopwatch::bench_fn;
use vl_bench::{fig67, par};
use vl_workload::{TraceGenerator, WorkloadConfig};

fn main() {
    let threads = par::thread_count(None);
    let cfg = WorkloadConfig::smoke();
    for (fig, rank) in [("Figure 6", 1usize), ("Figure 7", 10)] {
        let (rows, stats) = fig67::run(&cfg, rank, threads);
        println!("\n# {fig} (smoke preset) — avg state at popularity rank {rank}");
        println!("{}", fig67::table(&rows).render());
        println!("{}", stats.summary());
    }

    let trace = TraceGenerator::new(cfg).generate();
    bench_fn("fig6_7/state_sweep_one_timeout", 10, || {
        fig67::run_on(&trace, 1, &[10_000], 1)
    });
}
