//! Std-only, in-workspace implementation of the subset of the
//! `parking_lot` API this workspace uses.
//!
//! The build environment has no crates.io access, so the external
//! `parking_lot` crate cannot resolve; this crate keeps every
//! `use parking_lot::…` call site compiling unchanged. Locks wrap
//! `std::sync` primitives with the panic-free, poison-ignoring interface
//! parking_lot exposes (`lock()` returns the guard directly).

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Instant;

pub use std::sync::WaitTimeoutResult;

/// A mutex whose `lock` never returns a poison error: a panic while
/// holding the lock leaves the data as-is, matching parking_lot.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex guarding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so Condvar::wait_until can temporarily take the std guard.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Atomically releases the guarded lock and waits until notified or
    /// `deadline` passes; the lock is re-acquired before returning.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present outside wait");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        result
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn lock_guards_data() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn wait_until_times_out() {
        let pair = (Mutex::new(false), Condvar::new());
        let mut guard = pair.0.lock();
        let res = pair
            .1
            .wait_until(&mut guard, Instant::now() + Duration::from_millis(20));
        assert!(res.timed_out());
        assert!(!*guard); // guard usable again after the wait
    }

    #[test]
    fn notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = thread::spawn(move || {
            let mut done = p2.0.lock();
            while !*done {
                let res =
                    p2.1.wait_until(&mut done, Instant::now() + Duration::from_secs(5));
                assert!(!res.timed_out());
            }
        });
        thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        h.join().unwrap();
    }
}
