//! A data-mining agent that loses connectivity: the scenario volume
//! leases were designed for (§1, §3.1.1).
//!
//! While the agent is partitioned, the origin can still write — it waits
//! at most the *volume* lease (500 ms here), not the week-long object
//! lease. When the agent returns it is reconciled through the
//! `MUST_RENEW_ALL` reconnection protocol and never observes stale data.
//!
//! ```text
//! cargo run --release --example disconnected_agent
//! ```

use bytes::Bytes;
use std::time::Duration as StdDuration;
use volume_leases::client::{CacheClient, ClientConfig, ReadError};
use volume_leases::net::{InMemoryNetwork, NodeId};
use volume_leases::server::{LeaseServer, ServerConfig, WallClock};
use volume_leases::types::{ClientId, ObjectId, ServerId};

fn main() {
    let net = InMemoryNetwork::new();
    let clock = WallClock::new();
    let origin = ServerId(0);
    let agent_id = ClientId(1);

    let server = LeaseServer::spawn(
        ServerConfig {
            // Long object leases (a week) amortize the agent's reads…
            object_lease: StdDuration::from_secs(7 * 24 * 3600),
            // …while a short volume lease bounds the failure damage.
            volume_lease: StdDuration::from_millis(500),
            ..ServerConfig::new(origin)
        },
        net.endpoint(NodeId::Server(origin)),
        clock,
    );
    let dataset: Vec<ObjectId> = (0..5).map(ObjectId).collect();
    for &o in &dataset {
        server.create_object(o, Bytes::from(format!("{o}@v1")));
    }

    let agent = CacheClient::spawn(
        ClientConfig::new(agent_id, origin),
        net.endpoint(NodeId::Client(agent_id)),
        clock,
    );
    for &o in &dataset {
        agent.read(o).expect("warm the cache");
    }
    println!(
        "agent cached {} objects under a 7-day object lease",
        dataset.len()
    );

    // The agent falls off the network.
    net.partition(NodeId::Client(agent_id), NodeId::Server(origin));
    println!("agent partitioned");

    // The origin updates two objects. Despite the week-long object
    // lease, each write completes within the 500 ms volume lease.
    for &o in &dataset[..2] {
        let outcome = server.write(o, Bytes::from(format!("{o}@v2")));
        println!(
            "write {o}: delayed {}, {} holder(s) waited out",
            outcome.delay, outcome.waited_out
        );
        assert!(outcome.delay.as_millis() <= 1500, "bounded by t_v");
    }

    // Disconnected strong reads refuse rather than lie.
    std::thread::sleep(StdDuration::from_millis(100));
    match agent.read(dataset[0]) {
        Err(ReadError::Unavailable { object }) => {
            println!("agent read of {object} while offline: refused (may be stale)")
        }
        other => panic!("expected Unavailable, got {other:?}"),
    }
    println!(
        "suspect read still available with a warning: {:?}",
        agent
            .read_suspect(dataset[0])
            .map(|b| String::from_utf8_lossy(&b).into_owned())
    );

    // The agent comes back and is reconciled.
    net.heal(NodeId::Client(agent_id), NodeId::Server(origin));
    for &o in &dataset {
        let data = agent.read(o).expect("reconnected");
        let s = String::from_utf8_lossy(&data);
        let expect_v2 = o.raw() < 2;
        assert_eq!(s.ends_with("v2"), expect_v2, "{o} => {s}");
    }
    let stats = agent.stats();
    println!(
        "agent reconciled: {} reconnection exchange(s), {} batched invalidation(s); \
         modified objects refetched, untouched objects kept",
        stats.reconnections, stats.batched_invalidations
    );

    agent.shutdown();
    server.shutdown();
}
