//! A live news site: one origin server, a newsroom that pushes updates,
//! and a crowd of reader caches that must never show a stale headline.
//!
//! Exercises the live stack end-to-end (server thread, client threads,
//! in-memory network): leases amortize reads, server-driven
//! invalidations propagate each update, and every read observes the
//! latest completed write.
//!
//! ```text
//! cargo run --release --example news_site
//! ```

use bytes::Bytes;
use volume_leases::client::{CacheClient, ClientConfig};
use volume_leases::net::{InMemoryNetwork, NodeId};
use volume_leases::server::{LeaseServer, ServerConfig, WallClock};
use volume_leases::types::{ClientId, ObjectId, ServerId};

const FRONT_PAGE: ObjectId = ObjectId(0);
const READERS: u32 = 8;
const UPDATES: usize = 5;

fn main() {
    let net = InMemoryNetwork::new();
    let clock = WallClock::new();
    let origin = ServerId(0);

    let server = LeaseServer::spawn(
        ServerConfig::new(origin),
        net.endpoint(NodeId::Server(origin)),
        clock,
    );
    server.create_object(FRONT_PAGE, Bytes::from_static(b"headline #0"));

    let readers: Vec<CacheClient> = (0..READERS)
        .map(|i| {
            CacheClient::spawn(
                ClientConfig::new(ClientId(i), origin),
                net.endpoint(NodeId::Client(ClientId(i))),
                clock,
            )
        })
        .collect();

    for update in 1..=UPDATES {
        // Readers hammer the front page; after the first fetch these are
        // all lease-covered cache hits.
        for reader in &readers {
            let page = reader.read(FRONT_PAGE).expect("origin reachable");
            assert_eq!(page, Bytes::from(format!("headline #{}", update - 1)));
        }
        // The newsroom publishes; the origin invalidates every holder
        // and blocks only until they ack.
        let headline = format!("headline #{update}");
        let outcome = server.write(FRONT_PAGE, Bytes::from(headline.clone()));
        println!(
            "published {headline:?}: {} invalidations, {} queued, {} write delay",
            outcome.invalidations_sent, outcome.queued, outcome.delay
        );
        // Strong consistency: the very next read everywhere is current.
        for reader in &readers {
            assert_eq!(
                reader.read(FRONT_PAGE).unwrap(),
                Bytes::from(headline.clone())
            );
        }
    }

    let total_reads: u64 = readers
        .iter()
        .map(|r| {
            let s = r.stats();
            s.local_reads + s.remote_reads
        })
        .sum();
    let local_reads: u64 = readers.iter().map(|r| r.stats().local_reads).sum();
    println!(
        "\n{READERS} readers, {total_reads} reads, {local_reads} served from cache \
         ({:.0}%), 0 stale",
        100.0 * local_reads as f64 / total_reads as f64
    );
    let stats = server.stats();
    println!(
        "origin: {} msgs in, {} msgs out, {} writes, max write delay {}",
        stats.msgs_in, stats.msgs_out, stats.writes, stats.max_write_delay
    );

    for reader in readers {
        reader.shutdown();
    }
    server.shutdown();
}
