//! Replay a BU-format browser trace (or the embedded sample) and report
//! what each consistency algorithm would have cost.
//!
//! ```text
//! cargo run --release --example trace_analysis [path/to/bu.trace]
//! ```
//!
//! With a path argument the file is parsed as the Boston University
//! trace format (Cunha et al. 1995); without one, an embedded synthetic
//! sample in the same format is used. Writes are synthesized with the
//! paper's §4.2 mutability model, scaled to the trace's span.

use rand::SeedableRng;
use volume_leases::core::{ProtocolKind, SimulationBuilder};
use volume_leases::types::{Duration, ObjectId};
use volume_leases::workload::{bu, Trace, WriteModel, WriteModelConfig};

/// A tiny trace in BU format: 3 workstations browsing 2 sites.
fn embedded_sample() -> String {
    let mut log = String::new();
    let sites = ["http://cs-www.bu.edu", "http://www.ncsa.uiuc.edu"];
    for i in 0..600usize {
        let machine = ["cs20", "cs21", "cs22"][i % 3];
        let site = sites[(i / 7) % 2];
        let page = (i * 13 % 17) % 9;
        let ts = 791_131_220.0 + (i as f64) * 97.3;
        log.push_str(&format!(
            "{machine} {ts:.3} {} \"{site}/page{page}.html\" {} {:.2}\n",
            300 + i % 40,
            800 + (i * 37) % 9000,
            0.1 + (i % 10) as f64 / 20.0
        ));
    }
    log
}

fn main() {
    let parsed = match std::env::args().nth(1) {
        Some(path) => {
            let file = std::fs::File::open(&path).expect("open trace file");
            bu::parse_reader(std::io::BufReader::new(file)).expect("parse BU trace")
        }
        None => bu::parse_reader(embedded_sample().as_bytes()).expect("embedded sample parses"),
    };
    println!(
        "parsed {} reads from {} clients, {} servers, {} URLs ({} lines skipped)",
        parsed.trace.read_count(),
        parsed.clients.len(),
        parsed.servers.len(),
        parsed.urls.len(),
        parsed.skipped_lines
    );

    // Synthesize writes, scaling rates so a short trace still sees a
    // plausible number of updates.
    let days = (parsed.trace.span().as_secs_f64() / 86_400.0).max(0.001);
    let universe = parsed.trace.universe().clone();
    // Aim for roughly one write per ten reads, whatever the trace span:
    // the paper's absolute rates assume multi-month traces.
    let base_expected = universe.object_count() as f64 * 0.0269 * days;
    let scale = ((parsed.trace.read_count() as f64 / 10.0) / base_expected).clamp(1.0, 1e6);
    let mut rank: Vec<ObjectId> = (0..universe.object_count() as u64).map(ObjectId).collect();
    // Rank by observed read counts.
    let mut counts = vec![0u64; universe.object_count()];
    for e in parsed.trace.events() {
        counts[e.object().raw() as usize] += 1;
    }
    rank.sort_by_key(|o| std::cmp::Reverse(counts[o.raw() as usize]));

    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let base = WriteModelConfig::paper();
    let model = WriteModel::assign(
        &rank,
        WriteModelConfig {
            rates_per_day: base.rates_per_day.map(|r| r * scale),
            ..base
        },
        &mut rng,
    );
    let writes = model.generate(&universe, days, &mut rng);
    println!(
        "synthesized {} writes over {days:.4} days (rate scale ×{scale:.0})\n",
        writes.len()
    );

    let mut events = parsed.trace.events().to_vec();
    events.extend(writes);
    let trace = Trace::new(universe, events);

    let tv = Duration::from_secs(10);
    let t = Duration::from_secs(10_000);
    println!(
        "{:<24} {:>9} {:>12} {:>9}",
        "algorithm", "messages", "bytes", "stale %"
    );
    for kind in [
        ProtocolKind::Poll { timeout: t },
        ProtocolKind::Callback,
        ProtocolKind::Lease { timeout: t },
        ProtocolKind::VolumeLease {
            volume_timeout: tv,
            object_timeout: t,
        },
        ProtocolKind::DelayedInvalidation {
            volume_timeout: tv,
            object_timeout: t,
            inactive_discard: Duration::MAX,
        },
    ] {
        let r = SimulationBuilder::new(kind).run(&trace);
        println!(
            "{:<24} {:>9} {:>12} {:>8.2}%",
            kind.to_string(),
            r.summary.messages,
            r.summary.bytes,
            r.summary.stale_fraction * 100.0
        );
    }
}
