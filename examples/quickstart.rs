//! Quickstart: compare all six consistency algorithms on a synthetic
//! web workload.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use volume_leases::core::{ProtocolKind, SimulationBuilder};
use volume_leases::types::Duration;
use volume_leases::workload::{TraceGenerator, WorkloadConfig};

fn main() {
    // A small deterministic trace: 5 clients, 20 servers, ~6K reads
    // over 3 simulated days, with the paper's §4.2 write model.
    let trace = TraceGenerator::new(WorkloadConfig::smoke()).generate();
    println!(
        "workload: {} reads, {} writes, {} objects, {} volumes, {:.1} day span\n",
        trace.read_count(),
        trace.write_count(),
        trace.universe().object_count(),
        trace.universe().volume_count(),
        trace.span().as_secs_f64() / 86_400.0
    );

    let tv = Duration::from_secs(10);
    let t = Duration::from_secs(100_000);
    let algorithms = [
        ProtocolKind::PollEachRead,
        ProtocolKind::Poll { timeout: t },
        ProtocolKind::Callback,
        ProtocolKind::Lease { timeout: tv }, // same 10 s write bound as Volume/Delay
        ProtocolKind::Lease { timeout: t },
        ProtocolKind::VolumeLease {
            volume_timeout: tv,
            object_timeout: t,
        },
        ProtocolKind::DelayedInvalidation {
            volume_timeout: tv,
            object_timeout: t,
            inactive_discard: Duration::MAX,
        },
    ];

    println!(
        "{:<26} {:>10} {:>12} {:>11} {:>12}",
        "algorithm", "messages", "msgs/read", "stale %", "write bound"
    );
    for kind in algorithms {
        let report = SimulationBuilder::new(kind).run(&trace);
        let bound = kind
            .max_write_delay()
            .map_or("unbounded".to_owned(), |d| format!("{d}"));
        println!(
            "{:<26} {:>10} {:>12.3} {:>10.2}% {:>12}",
            kind.to_string(),
            report.summary.messages,
            report.messages_per_read(),
            report.summary.stale_fraction * 100.0,
            bound
        );
    }
    println!(
        "\nCompare the rows with a 10 s write bound: Volume(10, t) and\n\
         Delay(10, t, ∞) send far fewer messages than Lease(10), which must\n\
         keep its object leases short to match the bound — the paper's core\n\
         result (§5.1). Poll is cheaper still, but serves stale reads."
    );
}
