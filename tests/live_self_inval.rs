//! Self-invalidation with precise clocks, end to end over real TCP:
//! the live drivers run the same sans-io machines the fault harness
//! proves safe, so writes send **zero** invalidation messages, clients
//! drop their copies at server-assigned deadlines on their own clocks,
//! and nobody ever reads stale data — even with a chaos proxy mangling
//! the network, because there are no invalidations to lose.

use bytes::Bytes;
use std::time::Duration as StdDuration;
use vl_client::{CacheClient, ClientConfig};
use vl_net::chaos::{ChaosConfig, ChaosNet};
use vl_net::retry::RetryPolicy;
use vl_net::tcp::{TcpConfig, TcpNode};
use vl_net::NodeId;
use vl_server::{LeaseServer, ServerConfig, WallClock};
use vl_types::{ClientId, Duration, ObjectId, ServerId};

const SRV: ServerId = ServerId(0);
const OBJ: ObjectId = ObjectId(1);

/// Deadline horizon `t` — short, so write waits stay within the test
/// budget.
const T: StdDuration = StdDuration::from_millis(600);
/// Clock-skew bound `ε`. Loopback clocks are exact (one wall clock), so
/// any positive bound is honored.
const EPS: StdDuration = StdDuration::from_millis(200);

fn quick_tcp() -> TcpConfig {
    TcpConfig {
        read_tick: StdDuration::from_millis(25),
        idle_deadline: Some(StdDuration::from_secs(5)),
        redial: RetryPolicy {
            base: StdDuration::from_millis(25),
            max: StdDuration::from_millis(200),
            ..RetryPolicy::default()
        },
        supervise_every: StdDuration::from_millis(10),
        ..TcpConfig::default()
    }
}

fn self_inval_server() -> ServerConfig {
    ServerConfig {
        object_lease: T,
        self_inval: Some(EPS),
        ..ServerConfig::new(SRV)
    }
}

fn self_inval_client(id: u32) -> ClientConfig {
    ClientConfig {
        request_timeout: StdDuration::from_millis(150),
        max_retries: 40,
        self_inval: true,
        ..ClientConfig::new(ClientId(id), SRV)
    }
}

/// Payloads encode the committed version as `v<N>`.
fn version_of(data: &[u8]) -> u64 {
    let s = std::str::from_utf8(data).expect("utf8 payload");
    s.rsplit('v')
        .next()
        .unwrap()
        .parse()
        .expect("versioned payload")
}

/// The protocol's two headline properties over a clean loopback: every
/// write commits with zero messages sent, and its delay is bounded by
/// `t + ε` (plus scheduling slack) — never by a per-client ack.
#[test]
fn writes_send_nothing_and_wait_at_most_t_plus_epsilon() {
    let clock = WallClock::new();
    let server_node =
        TcpNode::listen_with(NodeId::Server(SRV), "127.0.0.1:0", quick_tcp()).unwrap();
    let addr = server_node.local_addr().unwrap();
    let server = LeaseServer::spawn(self_inval_server(), server_node, clock);
    server.create_object(OBJ, Bytes::from_static(b"s v1"));

    let c1 = CacheClient::spawn(
        self_inval_client(1),
        TcpNode::dial_with(NodeId::Client(ClientId(1)), addr, quick_tcp()).unwrap(),
        clock,
    );
    let c2 = CacheClient::spawn(
        self_inval_client(2),
        TcpNode::dial_with(NodeId::Client(ClientId(2)), addr, quick_tcp()).unwrap(),
        clock,
    );
    assert_eq!(&c1.read(OBJ).unwrap()[..], b"s v1");
    assert_eq!(&c2.read(OBJ).unwrap()[..], b"s v1");
    // A cached copy is readable until its deadline without any traffic.
    assert_eq!(&c1.read(OBJ).unwrap()[..], b"s v1");
    assert!(c1.stats().local_reads >= 1);

    // Both clients hold fresh deadlines, so the write must wait them
    // out — but contact nobody.
    let out = server.write(OBJ, Bytes::from_static(b"s v2"));
    assert_eq!(out.invalidations_sent, 0, "self-inval writes are silent");
    assert_eq!(out.queued, 0);
    let bound = Duration::from_millis((T + EPS).as_millis() as u64 + 500);
    assert!(
        out.delay <= bound,
        "write delay {} exceeds t + \u{3b5} + slack",
        out.delay
    );
    // The wait was real: both deadlines were outstanding at the write.
    assert!(
        out.delay >= Duration::from_millis(T.as_millis() as u64 / 2),
        "write committed suspiciously fast ({}) with live deadlines out",
        out.delay
    );

    // By commit time every copy has self-invalidated; the next reads
    // refetch the new version.
    assert_eq!(&c1.read(OBJ).unwrap()[..], b"s v2");
    assert_eq!(&c2.read(OBJ).unwrap()[..], b"s v2");

    c1.shutdown();
    c2.shutdown();
    server.shutdown();
}

/// Chaos run: seeded drops, delays, and resets on both endpoints. The
/// volume-lease protocol survives this because dropped invalidations
/// are fenced by `t_v`; self-invalidation survives it more simply —
/// there is nothing to drop. No read may ever go backwards in version,
/// and every write must stay silent.
#[test]
fn no_stale_reads_under_chaos_with_zero_invalidations() {
    let chaos = ChaosNet::new(ChaosConfig {
        seed: 42,
        drop_prob: 0.15,
        delay_prob: 0.20,
        max_delay_ms: 20,
        reset_prob: 0.02,
        reset_burst: 2,
        ..ChaosConfig::default()
    });
    let clock = WallClock::new();
    let server_node =
        TcpNode::listen_with(NodeId::Server(SRV), "127.0.0.1:0", quick_tcp()).unwrap();
    let addr = server_node.local_addr().unwrap();
    let server = LeaseServer::spawn(self_inval_server(), chaos.wrap(server_node), clock);
    server.create_object(OBJ, Bytes::from_static(b"c v1"));

    let client_node = TcpNode::dial_with(NodeId::Client(ClientId(1)), addr, quick_tcp()).unwrap();
    let client = CacheClient::spawn(self_inval_client(1), chaos.wrap(client_node), clock);

    let mut version = 1u64;
    let mut last_seen = 0u64;
    let mut successes = 0u32;
    for _ in 0..8u32 {
        version += 1;
        let out = server.write(OBJ, Bytes::from(format!("c v{version}")));
        assert_eq!(
            out.invalidations_sent, 0,
            "a self-inval write sent an invalidation"
        );
        assert_eq!(out.queued, 0);
        for _ in 0..3 {
            if let Ok(data) = client.read(OBJ) {
                let v = version_of(&data);
                assert!(
                    v >= last_seen,
                    "stale read: saw v{v} after having seen v{last_seen}"
                );
                last_seen = v;
                successes += 1;
            }
        }
    }
    assert!(successes > 0, "chaos never let a single read through");
    assert!(
        chaos.counters().dropped > 0,
        "chaos injected no drops: {:?}",
        chaos.counters()
    );
    chaos.stop();
    server.shutdown();
    client.shutdown();
}
