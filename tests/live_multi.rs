//! Multi-origin client integration: one browser-like cache against three
//! independent lease servers, including the paper's failure-isolation
//! property — a partition to one origin only affects that origin's
//! objects.

use bytes::Bytes;
use std::time::Duration as StdDuration;
use vl_client::{MultiCache, MultiConfig, ObjectLocation, ReadError};
use vl_net::{InMemoryNetwork, NodeId};
use vl_server::{LeaseServer, ServerConfig, ServerHandle, WallClock};
use vl_types::{ClientId, ObjectId, ServerId};

const ORIGINS: u32 = 3;
const ME: ClientId = ClientId(1);

/// Objects get globally unique ids: origin s hosts 10·s … 10·s+2.
fn obj(server: u32, i: u64) -> ObjectId {
    ObjectId(u64::from(server) * 10 + i)
}

fn setup() -> (InMemoryNetwork, WallClock, Vec<ServerHandle>, MultiCache) {
    let net = InMemoryNetwork::new();
    let clock = WallClock::new();
    let servers: Vec<ServerHandle> = (0..ORIGINS)
        .map(|s| {
            let handle = LeaseServer::spawn(
                ServerConfig {
                    volume_lease: StdDuration::from_millis(400),
                    ..ServerConfig::new(ServerId(s))
                },
                net.endpoint(NodeId::Server(ServerId(s))),
                clock,
            );
            for i in 0..3 {
                handle.create_object(obj(s, i), Bytes::from(format!("s{s}o{i}v1")));
            }
            handle
        })
        .collect();
    let cache = MultiCache::spawn(
        MultiConfig::new(ME),
        net.endpoint(NodeId::Client(ME)),
        clock,
    );
    (net, clock, servers, cache)
}

#[test]
fn reads_across_origins_with_independent_leases() {
    let (_net, _clock, servers, cache) = setup();
    for s in 0..ORIGINS {
        for i in 0..3 {
            let data = cache
                .read(ObjectLocation::origin(ServerId(s)), obj(s, i))
                .unwrap();
            assert_eq!(&data[..], format!("s{s}o{i}v1").as_bytes());
        }
    }
    assert_eq!(cache.live_volumes(), ORIGINS as usize);
    // Second pass is all cache hits.
    let before = cache.stats();
    for s in 0..ORIGINS {
        for i in 0..3 {
            cache
                .read(ObjectLocation::origin(ServerId(s)), obj(s, i))
                .unwrap();
        }
    }
    let after = cache.stats();
    assert_eq!(after.local_reads - before.local_reads, 9);
    assert_eq!(after.remote_reads, before.remote_reads);
    cache.shutdown();
    for s in servers {
        s.shutdown();
    }
}

#[test]
fn invalidations_route_per_origin() {
    let (_net, _clock, servers, cache) = setup();
    for s in 0..ORIGINS {
        cache
            .read(ObjectLocation::origin(ServerId(s)), obj(s, 0))
            .unwrap();
    }
    // Write at origin 1 only.
    let out = servers[1].write(obj(1, 0), Bytes::from_static(b"s1o0v2"));
    assert_eq!(out.invalidations_sent, 1);
    assert_eq!(
        &cache
            .read(ObjectLocation::origin(ServerId(1)), obj(1, 0))
            .unwrap()[..],
        b"s1o0v2"
    );
    // The other origins' copies are untouched cache hits.
    let before = cache.stats().local_reads;
    cache
        .read(ObjectLocation::origin(ServerId(0)), obj(0, 0))
        .unwrap();
    cache
        .read(ObjectLocation::origin(ServerId(2)), obj(2, 0))
        .unwrap();
    assert_eq!(cache.stats().local_reads - before, 2);
    cache.shutdown();
    for s in servers {
        s.shutdown();
    }
}

#[test]
fn partition_isolates_failures_to_one_origin() {
    let (net, _clock, servers, cache) = setup();
    for s in 0..ORIGINS {
        cache
            .read(ObjectLocation::origin(ServerId(s)), obj(s, 0))
            .unwrap();
    }
    // Cut origin 0; wait out its short volume lease.
    net.partition(NodeId::Client(ME), NodeId::Server(ServerId(0)));
    std::thread::sleep(StdDuration::from_millis(500));

    // Origin 0's object is now unavailable (never silently stale)…
    assert!(matches!(
        cache.read(ObjectLocation::origin(ServerId(0)), obj(0, 0)),
        Err(ReadError::Unavailable { .. })
    ));
    // …while the other origins keep serving with strong consistency.
    servers[2].write(obj(2, 0), Bytes::from_static(b"s2o0v2"));
    assert_eq!(
        &cache
            .read(ObjectLocation::origin(ServerId(2)), obj(2, 0))
            .unwrap()[..],
        b"s2o0v2"
    );
    assert_eq!(
        &cache
            .read(ObjectLocation::origin(ServerId(1)), obj(1, 0))
            .unwrap()[..],
        b"s1o0v1"
    );

    // Heal: origin 0 recovers through its volume renewal.
    net.heal(NodeId::Client(ME), NodeId::Server(ServerId(0)));
    assert_eq!(
        &cache
            .read(ObjectLocation::origin(ServerId(0)), obj(0, 0))
            .unwrap()[..],
        b"s0o0v1"
    );
    cache.shutdown();
    for s in servers {
        s.shutdown();
    }
}

#[test]
fn unreachable_origin_resyncs_via_must_renew_all() {
    let (net, _clock, servers, cache) = setup();
    cache
        .read(ObjectLocation::origin(ServerId(0)), obj(0, 0))
        .unwrap();
    cache
        .read(ObjectLocation::origin(ServerId(0)), obj(0, 1))
        .unwrap();

    // Partition, then write both objects: the origin waits the client
    // out (obj(0,0) holder) and joins it to the Unreachable set.
    net.partition(NodeId::Client(ME), NodeId::Server(ServerId(0)));
    servers[0].write(obj(0, 0), Bytes::from_static(b"s0o0v2"));
    net.heal(NodeId::Client(ME), NodeId::Server(ServerId(0)));

    // The next read triggers MUST_RENEW_ALL; the stale copy is dropped
    // and refetched, the fresh one renewed in place.
    assert_eq!(
        &cache
            .read(ObjectLocation::origin(ServerId(0)), obj(0, 0))
            .unwrap()[..],
        b"s0o0v2"
    );
    assert_eq!(
        &cache
            .read(ObjectLocation::origin(ServerId(0)), obj(0, 1))
            .unwrap()[..],
        b"s0o1v1"
    );
    assert!(cache.stats().reconnections >= 1);
    cache.shutdown();
    for s in servers {
        s.shutdown();
    }
}
