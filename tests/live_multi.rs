//! Multi-origin client integration: one browser-like cache against three
//! independent lease servers, including the paper's failure-isolation
//! property — a partition to one origin only affects that origin's
//! objects — and the sharded-service extension: live volume handoffs
//! under chaos, with redirects re-aiming the client and the ordinary
//! `MUST_RENEW_ALL` path re-syncing it.

use bytes::Bytes;
use std::time::{Duration as StdDuration, Instant};
use vl_client::{MultiCache, MultiConfig, ObjectLocation, ReadError};
use vl_net::chaos::{ChaosNet, ChaosProfile};
use vl_net::{InMemoryNetwork, NodeId};
use vl_server::{rebalance, LeaseServer, ServerConfig, ServerHandle, WallClock};
use vl_types::{ClientId, Duration, Epoch, ObjectId, ServerId, VolumeId};

const ORIGINS: u32 = 3;
const ME: ClientId = ClientId(1);

/// Objects get globally unique ids: origin s hosts 10·s … 10·s+2.
fn obj(server: u32, i: u64) -> ObjectId {
    ObjectId(u64::from(server) * 10 + i)
}

fn setup() -> (InMemoryNetwork, WallClock, Vec<ServerHandle>, MultiCache) {
    let net = InMemoryNetwork::new();
    let clock = WallClock::new();
    let servers: Vec<ServerHandle> = (0..ORIGINS)
        .map(|s| {
            let handle = LeaseServer::spawn(
                ServerConfig {
                    volume_lease: StdDuration::from_millis(400),
                    ..ServerConfig::new(ServerId(s))
                },
                net.endpoint(NodeId::Server(ServerId(s))),
                clock,
            );
            for i in 0..3 {
                handle.create_object(obj(s, i), Bytes::from(format!("s{s}o{i}v1")));
            }
            handle
        })
        .collect();
    let cache = MultiCache::spawn(
        MultiConfig::new(ME),
        net.endpoint(NodeId::Client(ME)),
        clock,
    );
    (net, clock, servers, cache)
}

#[test]
fn reads_across_origins_with_independent_leases() {
    let (_net, _clock, servers, cache) = setup();
    for s in 0..ORIGINS {
        for i in 0..3 {
            let data = cache
                .read(ObjectLocation::origin(ServerId(s)), obj(s, i))
                .unwrap();
            assert_eq!(&data[..], format!("s{s}o{i}v1").as_bytes());
        }
    }
    assert_eq!(cache.live_volumes(), ORIGINS as usize);
    // Second pass is all cache hits.
    let before = cache.stats();
    for s in 0..ORIGINS {
        for i in 0..3 {
            cache
                .read(ObjectLocation::origin(ServerId(s)), obj(s, i))
                .unwrap();
        }
    }
    let after = cache.stats();
    assert_eq!(after.local_reads - before.local_reads, 9);
    assert_eq!(after.remote_reads, before.remote_reads);
    cache.shutdown();
    for s in servers {
        s.shutdown();
    }
}

#[test]
fn invalidations_route_per_origin() {
    let (_net, _clock, servers, cache) = setup();
    for s in 0..ORIGINS {
        cache
            .read(ObjectLocation::origin(ServerId(s)), obj(s, 0))
            .unwrap();
    }
    // Write at origin 1 only.
    let out = servers[1].write(obj(1, 0), Bytes::from_static(b"s1o0v2"));
    assert_eq!(out.invalidations_sent, 1);
    assert_eq!(
        &cache
            .read(ObjectLocation::origin(ServerId(1)), obj(1, 0))
            .unwrap()[..],
        b"s1o0v2"
    );
    // The other origins' copies are untouched cache hits.
    let before = cache.stats().local_reads;
    cache
        .read(ObjectLocation::origin(ServerId(0)), obj(0, 0))
        .unwrap();
    cache
        .read(ObjectLocation::origin(ServerId(2)), obj(2, 0))
        .unwrap();
    assert_eq!(cache.stats().local_reads - before, 2);
    cache.shutdown();
    for s in servers {
        s.shutdown();
    }
}

#[test]
fn partition_isolates_failures_to_one_origin() {
    let (net, _clock, servers, cache) = setup();
    for s in 0..ORIGINS {
        cache
            .read(ObjectLocation::origin(ServerId(s)), obj(s, 0))
            .unwrap();
    }
    // Cut origin 0; wait out its short volume lease.
    net.partition(NodeId::Client(ME), NodeId::Server(ServerId(0)));
    std::thread::sleep(StdDuration::from_millis(500));

    // Origin 0's object is now unavailable (never silently stale)…
    assert!(matches!(
        cache.read(ObjectLocation::origin(ServerId(0)), obj(0, 0)),
        Err(ReadError::Unavailable { .. })
    ));
    // …while the other origins keep serving with strong consistency.
    servers[2].write(obj(2, 0), Bytes::from_static(b"s2o0v2"));
    assert_eq!(
        &cache
            .read(ObjectLocation::origin(ServerId(2)), obj(2, 0))
            .unwrap()[..],
        b"s2o0v2"
    );
    assert_eq!(
        &cache
            .read(ObjectLocation::origin(ServerId(1)), obj(1, 0))
            .unwrap()[..],
        b"s1o0v1"
    );

    // Heal: origin 0 recovers through its volume renewal.
    net.heal(NodeId::Client(ME), NodeId::Server(ServerId(0)));
    assert_eq!(
        &cache
            .read(ObjectLocation::origin(ServerId(0)), obj(0, 0))
            .unwrap()[..],
        b"s0o0v1"
    );
    cache.shutdown();
    for s in servers {
        s.shutdown();
    }
}

/// The CI chaos matrix sets `VL_CHAOS_PROFILE`; locally the test runs
/// the `drops` profile by default.
fn chaos_profile() -> ChaosProfile {
    std::env::var("VL_CHAOS_PROFILE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(ChaosProfile::Drops)
}

/// Payloads are `s<server>o<object>v<version>`; the version suffix lets
/// reads prove freshness.
fn version_of(data: &[u8]) -> u64 {
    let s = std::str::from_utf8(data).expect("utf8 payload");
    s.rsplit('v').next().unwrap().parse().expect("v<N> suffix")
}

/// Polls `cond` until it holds or `for_ms` elapses.
fn eventually(for_ms: u64, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + StdDuration::from_millis(for_ms);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(StdDuration::from_millis(10));
    }
    cond()
}

/// Writes `data` at whichever server currently owns the object's
/// volume, following `moved_to` forwarding across an in-flight handoff.
/// Returns the final outcome and the owner that committed it.
fn write_at_owner(
    servers: &[ServerHandle],
    mut owner: usize,
    object: ObjectId,
    data: &Bytes,
) -> (vl_server::WriteOutcome, usize) {
    for _ in 0..servers.len() + 1 {
        let out = servers[owner].write(object, data.clone());
        match out.moved_to {
            None => return (out, owner),
            Some(next) => owner = next.raw() as usize,
        }
    }
    panic!("write chased moved_to in a cycle");
}

/// The tentpole acceptance test: a 3-server fleet serving one client
/// through a chaos-wrapped endpoint (profile from `VL_CHAOS_PROFILE`)
/// while volume 0 migrates 0 → 1 → 2 mid-run, live. Every server
/// writes a JSONL trace to `target/chaos/` — the CI matrix uploads
/// them when the test fails — and the run must show:
///
/// * zero stale reads (versions never go backwards, and post-quiesce
///   reads converge on the last committed version);
/// * write delay bounded by t_v plus slack even across the migration
///   (the gainer's write gate is the loser's max lease expiry);
/// * the client re-syncing through WRONG_SHARD redirects and the
///   ordinary MUST_RENEW_ALL reconnection — no new client states.
#[test]
fn handoff_under_chaos_keeps_reads_fresh_and_writes_bounded() {
    let profile = chaos_profile();
    let seed: u64 = std::env::var("VL_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let t_v = StdDuration::from_millis(400);
    let chaos = ChaosNet::new(profile.config(seed));
    let net = InMemoryNetwork::new();
    let clock = WallClock::new();

    let trace_dir = std::path::Path::new("target/chaos");
    std::fs::create_dir_all(trace_dir).unwrap();
    let servers: Vec<ServerHandle> = (0..ORIGINS)
        .map(|s| {
            let sink = vl_metrics::JsonlSink::new(
                std::fs::File::create(trace_dir.join(format!("{profile}-s{s}.jsonl"))).unwrap(),
            );
            let handle = LeaseServer::spawn_traced(
                ServerConfig {
                    volume_lease: t_v,
                    object_lease: StdDuration::from_secs(10),
                    ..ServerConfig::new(ServerId(s))
                },
                net.endpoint(NodeId::Server(ServerId(s))),
                clock,
                Box::new(sink),
            );
            for i in 0..3 {
                handle.create_object(obj(s, i), Bytes::from(format!("s{s}o{i}v1")));
            }
            handle
        })
        .collect();

    // Only the client's endpoint goes through the fault injector: the
    // data plane is hostile, the coordinator's control plane reliable
    // (the loser ships its manifest exactly once).
    let cache = MultiCache::spawn(
        MultiConfig {
            request_timeout: StdDuration::from_millis(150),
            max_retries: 40,
            ..MultiConfig::new(ME)
        },
        chaos.wrap(net.endpoint(NodeId::Client(ME))),
        clock,
    );
    let coord = net.endpoint(NodeId::Server(ServerId(1000)));

    // Warm every volume so the client holds leases that the handoffs
    // will force through resync.
    for s in 0..ORIGINS {
        assert!(
            eventually(10_000, || cache
                .read(ObjectLocation::origin(ServerId(s)), obj(s, 0))
                .is_ok()),
            "warm-up read of origin {s} never succeeded under {profile}"
        );
    }

    let target = obj(0, 0);
    let at = ObjectLocation::origin(ServerId(0));
    let mut version = 1u64;
    let mut last_seen = 1u64;
    let mut owner = 0usize;
    let mut successes = 0u32;
    let delay_bound = Duration::from_millis(t_v.as_millis() as u64 + 2_000);
    for round in 0..12u32 {
        // Two live migrations of volume 0 mid-run: 0 → 1, then 1 → 2.
        if round == 4 || round == 8 {
            let to = ServerId(if round == 4 { 1 } else { 2 });
            let out = rebalance(
                &coord,
                ServerId(owner as u32),
                &coord,
                to,
                VolumeId(0),
                StdDuration::from_secs(5),
            )
            .expect("handoff completes");
            assert_eq!(out.epoch, Epoch(u64::from(round) / 4), "epoch per handoff");
            assert_eq!(out.objects, 3, "manifest ships the whole volume");
            owner = to.raw() as usize;
        }
        version += 1;
        let (out, now_at) = write_at_owner(
            &servers,
            owner,
            target,
            &Bytes::from(format!("s0o0v{version}")),
        );
        owner = now_at;
        assert!(
            out.delay <= delay_bound,
            "round {round}: write delayed {} — exceeds t_v + slack across the migration",
            out.delay
        );
        for _ in 0..3 {
            if let Ok(data) = cache.read(at, target) {
                let v = version_of(&data);
                assert!(v >= last_seen, "stale read: v{v} after v{last_seen}");
                last_seen = v;
                successes += 1;
            }
        }
    }
    assert!(successes > 0, "chaos never let a single read through");
    assert_eq!(owner, 2, "volume 0 should have ended on server 2");

    // Faults stop; the client must converge on the latest version at
    // the final owner, purely via redirects + reconnection.
    chaos.stop();
    version += 1;
    let (_, owner) = write_at_owner(
        &servers,
        owner,
        target,
        &Bytes::from(format!("s0o0v{version}")),
    );
    assert!(
        eventually(10_000, || cache
            .read(at, target)
            .is_ok_and(|d| version_of(&d) == version)),
        "client never converged on v{version} after chaos stopped"
    );
    let stats = cache.stats();
    assert!(
        stats.redirects >= 1,
        "the moved volume never redirected the client: {stats:?}"
    );
    assert!(
        stats.reconnections >= 1,
        "epoch bumps never forced a MUST_RENEW_ALL resync: {stats:?}"
    );
    assert!(
        servers[owner].stats().handoffs_in >= 1,
        "final owner never recorded the handoff"
    );

    cache.shutdown();
    for s in servers {
        s.shutdown();
    }
}

/// Nightly soak: volume 0 orbits the fleet 0 → 1 → 2 → 0 → … while a
/// writer and a reader keep load on it; every round must preserve
/// monotone versions and end converged. Rounds default to 30 and scale
/// via `VL_SOAK_ROUNDS` (the nightly workflow raises it).
#[test]
#[ignore = "long soak — run via --include-ignored or the nightly workflow"]
fn rebalance_loop_soak() {
    let rounds: u64 = std::env::var("VL_SOAK_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30);
    let t_v = StdDuration::from_millis(300);
    let net = InMemoryNetwork::new();
    let clock = WallClock::new();
    let trace_dir = std::path::Path::new("target/soak");
    std::fs::create_dir_all(trace_dir).unwrap();
    let servers: Vec<ServerHandle> = (0..ORIGINS)
        .map(|s| {
            let sink = vl_metrics::JsonlSink::new(
                std::fs::File::create(trace_dir.join(format!("multi-s{s}.jsonl"))).unwrap(),
            );
            let handle = LeaseServer::spawn_traced(
                ServerConfig {
                    volume_lease: t_v,
                    object_lease: StdDuration::from_secs(10),
                    ..ServerConfig::new(ServerId(s))
                },
                net.endpoint(NodeId::Server(ServerId(s))),
                clock,
                Box::new(sink),
            );
            if s == 0 {
                for i in 0..3 {
                    handle.create_object(obj(0, i), Bytes::from(format!("s0o{i}v1")));
                }
            }
            handle
        })
        .collect();
    let cache = MultiCache::spawn(
        MultiConfig {
            request_timeout: StdDuration::from_millis(200),
            max_retries: 20,
            ..MultiConfig::new(ME)
        },
        net.endpoint(NodeId::Client(ME)),
        clock,
    );
    let coord = net.endpoint(NodeId::Server(ServerId(1000)));
    let at = ObjectLocation::origin(ServerId(0));
    let target = obj(0, 0);
    assert!(cache.read(at, target).is_ok(), "warm-up");

    let mut owner = 0u32;
    let mut version = 1u64;
    let mut last_seen = 1u64;
    let delay_bound = Duration::from_millis(t_v.as_millis() as u64 + 2_000);
    for round in 0..rounds {
        let to = (owner + 1) % ORIGINS;
        let out = rebalance(
            &coord,
            ServerId(owner),
            &coord,
            ServerId(to),
            VolumeId(0),
            StdDuration::from_secs(5),
        )
        .unwrap_or_else(|e| panic!("round {round}: handoff failed: {e}"));
        assert_eq!(out.epoch, Epoch(round + 1));
        owner = to;
        version += 1;
        let (out, now_at) = write_at_owner(
            &servers,
            owner as usize,
            target,
            &Bytes::from(format!("s0o0v{version}")),
        );
        owner = now_at as u32;
        assert!(
            out.delay <= delay_bound,
            "round {round}: write delayed {}",
            out.delay
        );
        let data = cache
            .read(at, target)
            .unwrap_or_else(|e| panic!("round {round}: read failed after handoff to {to}: {e:?}"));
        let v = version_of(&data);
        assert!(v >= last_seen, "round {round}: v{v} after v{last_seen}");
        last_seen = v;
    }
    assert!(
        eventually(5_000, || cache
            .read(at, target)
            .is_ok_and(|d| version_of(&d) == version)),
        "soak never converged on v{version}"
    );
    let stats = cache.stats();
    assert!(
        stats.redirects >= rounds / 2,
        "too few redirects: {stats:?}"
    );
    assert!(stats.reconnections >= 1, "no resyncs recorded: {stats:?}");
    cache.shutdown();
    for s in servers {
        s.shutdown();
    }
}

#[test]
fn unreachable_origin_resyncs_via_must_renew_all() {
    let (net, _clock, servers, cache) = setup();
    cache
        .read(ObjectLocation::origin(ServerId(0)), obj(0, 0))
        .unwrap();
    cache
        .read(ObjectLocation::origin(ServerId(0)), obj(0, 1))
        .unwrap();

    // Partition, then write both objects: the origin waits the client
    // out (obj(0,0) holder) and joins it to the Unreachable set.
    net.partition(NodeId::Client(ME), NodeId::Server(ServerId(0)));
    servers[0].write(obj(0, 0), Bytes::from_static(b"s0o0v2"));
    net.heal(NodeId::Client(ME), NodeId::Server(ServerId(0)));

    // The next read triggers MUST_RENEW_ALL; the stale copy is dropped
    // and refetched, the fresh one renewed in place.
    assert_eq!(
        &cache
            .read(ObjectLocation::origin(ServerId(0)), obj(0, 0))
            .unwrap()[..],
        b"s0o0v2"
    );
    assert_eq!(
        &cache
            .read(ObjectLocation::origin(ServerId(0)), obj(0, 1))
            .unwrap()[..],
        b"s0o1v1"
    );
    assert!(cache.stats().reconnections >= 1);
    cache.shutdown();
    for s in servers {
        s.shutdown();
    }
}
