//! Failure-mode integration tests for the live stack: the properties
//! that motivated volume leases (§1, §3) — bounded write delay under
//! partitions, delayed invalidations for inactive clients, and the
//! best-effort write mode.

use bytes::Bytes;
use std::time::Duration as StdDuration;
use vl_client::{CacheClient, ClientConfig, ReadError};
use vl_net::{InMemoryNetwork, NodeId};
use vl_server::{LeaseServer, ServerConfig, ServerHandle, WallClock, WriteMode};
use vl_types::{ClientId, ObjectId, ServerId};

const OBJ: ObjectId = ObjectId(1);
const SRV: ServerId = ServerId(0);

fn fast_config() -> ServerConfig {
    ServerConfig {
        object_lease: StdDuration::from_secs(10),
        volume_lease: StdDuration::from_millis(500),
        ..ServerConfig::new(SRV)
    }
}

fn setup(cfg: ServerConfig) -> (InMemoryNetwork, WallClock, ServerHandle) {
    let net = InMemoryNetwork::new();
    let clock = WallClock::new();
    let server = LeaseServer::spawn(cfg, net.endpoint(NodeId::Server(SRV)), clock);
    server.create_object(OBJ, Bytes::from_static(b"v1"));
    (net, clock, server)
}

fn client(net: &InMemoryNetwork, clock: WallClock, id: u32) -> CacheClient {
    CacheClient::spawn(
        ClientConfig::new(ClientId(id), SRV),
        net.endpoint(NodeId::Client(ClientId(id))),
        clock,
    )
}

#[test]
fn invalidation_keeps_two_clients_consistent() {
    let (net, clock, server) = setup(fast_config());
    let c1 = client(&net, clock, 1);
    let c2 = client(&net, clock, 2);
    assert_eq!(&c1.read(OBJ).unwrap()[..], b"v1");
    assert_eq!(&c2.read(OBJ).unwrap()[..], b"v1");

    let out = server.write(OBJ, Bytes::from_static(b"v2"));
    assert_eq!(out.invalidations_sent, 2, "both hold leases");
    assert_eq!(out.waited_out, 0, "both acked promptly");
    assert!(
        out.delay < vl_types::Duration::from_millis(400),
        "acked write should be fast, took {}",
        out.delay
    );

    // Reads after the write observe the new version immediately.
    assert_eq!(&c1.read(OBJ).unwrap()[..], b"v2");
    assert_eq!(&c2.read(OBJ).unwrap()[..], b"v2");
    assert_eq!(c1.stats().invalidations, 1);
    c1.shutdown();
    c2.shutdown();
    server.shutdown();
}

#[test]
fn partitioned_client_delays_write_at_most_min_lease() {
    let (net, clock, server) = setup(fast_config());
    let c1 = client(&net, clock, 1);
    assert_eq!(&c1.read(OBJ).unwrap()[..], b"v1");

    // Cut the client off; its volume lease (500 ms) now fences it.
    net.partition(NodeId::Client(ClientId(1)), NodeId::Server(SRV));
    let out = server.write(OBJ, Bytes::from_static(b"v2"));
    assert_eq!(out.waited_out, 1, "client never acked");
    assert!(
        out.delay <= vl_types::Duration::from_millis(900),
        "write must be bounded by t_v (+scheduling slack), took {}",
        out.delay
    );
    let stats = server.stats();
    assert_eq!(stats.unreachable, 1, "client joined the Unreachable set");

    // While partitioned, the client's own leases have expired: a strong
    // read refuses to return the (stale) cached copy.
    std::thread::sleep(StdDuration::from_millis(100));
    assert!(matches!(c1.read(OBJ), Err(ReadError::Unavailable { .. })));
    // …but the suspect API still hands out the old bytes, flagged.
    assert_eq!(&c1.read_suspect(OBJ).unwrap()[..], b"v1");

    // Heal: the client reconnects via MUST_RENEW_ALL and sees v2.
    net.heal(NodeId::Client(ClientId(1)), NodeId::Server(SRV));
    let data = c1.read(OBJ).expect("reconnection must succeed");
    assert_eq!(&data[..], b"v2", "never a stale strong read");
    assert_eq!(c1.stats().reconnections, 1);
    assert_eq!(server.stats().reconnections, 1);
    assert_eq!(server.stats().unreachable, 0);
    c1.shutdown();
    server.shutdown();
}

#[test]
fn inactive_client_gets_delayed_invalidations_batched() {
    let (net, clock, server) = setup(fast_config());
    let c1 = client(&net, clock, 1);
    let second = ObjectId(2);
    server.create_object(second, Bytes::from_static(b"b1"));
    assert_eq!(&c1.read(OBJ).unwrap()[..], b"v1");
    assert_eq!(&c1.read(second).unwrap()[..], b"b1");

    // Let the volume lease lapse (client goes quiet, not partitioned).
    std::thread::sleep(StdDuration::from_millis(700));

    // Both writes are queued, not sent: the client is inactive.
    let w1 = server.write(OBJ, Bytes::from_static(b"v2"));
    let w2 = server.write(second, Bytes::from_static(b"b2"));
    assert_eq!(w1.invalidations_sent + w2.invalidations_sent, 0);
    assert_eq!(w1.queued + w2.queued, 2);
    assert!(w1.delay < vl_types::Duration::from_millis(200));
    assert_eq!(server.stats().inactive, 1);

    // The client returns: one volume renewal delivers both
    // invalidations; the reads then fetch fresh data.
    assert_eq!(&c1.read(OBJ).unwrap()[..], b"v2");
    assert_eq!(&c1.read(second).unwrap()[..], b"b2");
    assert_eq!(c1.stats().batched_invalidations, 2);
    assert_eq!(c1.stats().invalidations, 0, "nothing was sent eagerly");
    assert_eq!(server.stats().inactive, 0, "queue acked and cleared");
    c1.shutdown();
    server.shutdown();
}

#[test]
fn best_effort_write_never_blocks_on_partition() {
    let cfg = ServerConfig {
        write_mode: WriteMode::BestEffort,
        ..fast_config()
    };
    let (net, clock, server) = setup(cfg);
    let c1 = client(&net, clock, 1);
    assert_eq!(&c1.read(OBJ).unwrap()[..], b"v1");
    net.partition(NodeId::Client(ClientId(1)), NodeId::Server(SRV));
    let out = server.write(OBJ, Bytes::from_static(b"v2"));
    assert!(
        out.delay < vl_types::Duration::from_millis(200),
        "best-effort writes do not wait for acks: {}",
        out.delay
    );
    assert_eq!(out.invalidations_sent, 1, "the attempt was made");
    c1.shutdown();
    server.shutdown();
}

#[test]
fn demotion_discards_queue_and_forces_reconnection() {
    let cfg = ServerConfig {
        inactive_discard: Some(StdDuration::from_millis(600)),
        ..fast_config()
    };
    let (net, clock, server) = setup(cfg);
    let c1 = client(&net, clock, 1);
    assert_eq!(&c1.read(OBJ).unwrap()[..], b"v1");

    // Volume lapses; a write queues an invalidation for the client.
    std::thread::sleep(StdDuration::from_millis(700));
    let w = server.write(OBJ, Bytes::from_static(b"v2"));
    assert_eq!(w.queued, 1);

    // After d the server demotes the client and discards the queue.
    std::thread::sleep(StdDuration::from_millis(900));
    let stats = server.stats();
    assert_eq!(stats.demotions, 1);
    assert_eq!(stats.inactive, 0);
    assert_eq!(stats.unreachable, 1);

    // The returning client reconnects and still sees only fresh data.
    assert_eq!(&c1.read(OBJ).unwrap()[..], b"v2");
    assert_eq!(c1.stats().reconnections, 1);
    c1.shutdown();
    server.shutdown();
}
