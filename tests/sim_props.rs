//! Property-based tests over random small traces: the invariants the
//! paper's algorithms promise, checked on arbitrary interleavings.

use proptest::prelude::*;
use vl_core::{ProtocolKind, SimulationBuilder};
use vl_types::{ClientId, Duration, ObjectId, ServerId, Timestamp};
use vl_workload::{Trace, TraceEvent, UniverseBuilder};

/// A compact generated workload: topology sizes plus event list.
#[derive(Clone, Debug)]
struct RandomTrace {
    volumes: u32,
    objects_per_volume: u64,
    events: Vec<TraceEvent>,
}

fn arb_trace() -> impl Strategy<Value = RandomTrace> {
    (2u32..5, 1u64..4).prop_flat_map(|(volumes, objects_per_volume)| {
        let n_objects = u64::from(volumes) * objects_per_volume;
        let event = (0u64..50_000, 0u32..4, 0..n_objects, any::<bool>()).prop_map(
            move |(at, client, object, is_read)| {
                let at = Timestamp::from_millis(at * 100);
                if is_read {
                    TraceEvent::Read {
                        at,
                        client: ClientId(client),
                        object: ObjectId(object),
                    }
                } else {
                    TraceEvent::Write {
                        at,
                        object: ObjectId(object),
                    }
                }
            },
        );
        proptest::collection::vec(event, 1..200).prop_map(move |events| RandomTrace {
            volumes,
            objects_per_volume,
            events,
        })
    })
}

fn build(rt: &RandomTrace) -> Trace {
    let mut b = UniverseBuilder::new();
    for v in 0..rt.volumes {
        let vol = b.add_volume(ServerId(v));
        for _ in 0..rt.objects_per_volume {
            b.add_object(vol, 500);
        }
    }
    Trace::new(b.build(), rt.events.clone())
}

fn strong_kinds() -> Vec<ProtocolKind> {
    vec![
        ProtocolKind::PollEachRead,
        ProtocolKind::Callback,
        ProtocolKind::Lease {
            timeout: Duration::from_secs(120),
        },
        ProtocolKind::WaitingLease {
            timeout: Duration::from_secs(120),
        },
        ProtocolKind::VolumeLease {
            volume_timeout: Duration::from_secs(15),
            object_timeout: Duration::from_secs(500),
        },
        ProtocolKind::DelayedInvalidation {
            volume_timeout: Duration::from_secs(15),
            object_timeout: Duration::from_secs(500),
            inactive_discard: Duration::MAX,
        },
        ProtocolKind::DelayedInvalidation {
            volume_timeout: Duration::from_secs(15),
            object_timeout: Duration::from_secs(500),
            inactive_discard: Duration::from_secs(60),
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No strongly consistent algorithm ever serves a stale read, on any
    /// interleaving of reads and writes. (The engine also asserts this
    /// internally; the property test drives it across random traces.)
    #[test]
    fn strong_protocols_never_stale(rt in arb_trace()) {
        let trace = build(&rt);
        for kind in strong_kinds() {
            let report = SimulationBuilder::new(kind).run(&trace);
            prop_assert_eq!(report.summary.stale_reads, 0, "{}", kind);
            prop_assert_eq!(report.summary.reads, trace.read_count());
        }
    }

    /// Delayed invalidations never send more messages than basic volume
    /// leases at identical parameters (§3.2's construction: messages are
    /// only removed, deferred, or batched).
    #[test]
    fn delay_never_beats_volume_on_messages(rt in arb_trace()) {
        let trace = build(&rt);
        let tv = Duration::from_secs(15);
        let t = Duration::from_secs(500);
        let volume = SimulationBuilder::new(ProtocolKind::VolumeLease {
            volume_timeout: tv,
            object_timeout: t,
        })
        .run(&trace);
        let delay = SimulationBuilder::new(ProtocolKind::DelayedInvalidation {
            volume_timeout: tv,
            object_timeout: t,
            inactive_discard: Duration::MAX,
        })
        .run(&trace);
        prop_assert!(delay.summary.messages <= volume.summary.messages);
    }

    /// Simulations are pure functions of the trace.
    #[test]
    fn simulation_is_deterministic(rt in arb_trace()) {
        let trace = build(&rt);
        let kind = ProtocolKind::DelayedInvalidation {
            volume_timeout: Duration::from_secs(15),
            object_timeout: Duration::from_secs(500),
            inactive_discard: Duration::from_secs(60),
        };
        let a = SimulationBuilder::new(kind).run(&trace);
        let b = SimulationBuilder::new(kind).run(&trace);
        prop_assert_eq!(a.summary, b.summary);
        prop_assert_eq!(a.metrics.total_bytes(), b.metrics.total_bytes());
    }

    /// Poll(0) is PollEachRead (the paper's degenerate case), and
    /// Poll's staleness is bounded: stale reads only happen within the
    /// trust window after a write.
    #[test]
    fn poll_degenerates_and_bounds(rt in arb_trace()) {
        let trace = build(&rt);
        let per = SimulationBuilder::new(ProtocolKind::PollEachRead).run(&trace);
        let p0 = SimulationBuilder::new(ProtocolKind::Poll {
            timeout: Duration::ZERO,
        })
        .run(&trace);
        prop_assert_eq!(per.summary.messages, p0.summary.messages);
        prop_assert_eq!(p0.summary.stale_reads, 0);
    }

    /// Waiting leases never send more messages than invalidating leases
    /// at equal t (they only remove invalidation traffic), and they are
    /// the only strong algorithm whose writes block without failures.
    #[test]
    fn waiting_lease_only_removes_messages(rt in arb_trace()) {
        let trace = build(&rt);
        let t = Duration::from_secs(120);
        let lease = SimulationBuilder::new(ProtocolKind::Lease { timeout: t }).run(&trace);
        let wait =
            SimulationBuilder::new(ProtocolKind::WaitingLease { timeout: t }).run(&trace);
        prop_assert!(wait.summary.messages <= lease.summary.messages);
        prop_assert_eq!(lease.summary.max_write_delay_secs, 0.0);
        prop_assert!(wait.summary.max_write_delay_secs <= t.as_secs_f64());
    }

    /// Lease(∞-ish) has the same steady-state message behaviour as
    /// Callback: with leases outlasting the trace nothing ever expires.
    #[test]
    fn infinite_lease_is_callback(rt in arb_trace()) {
        let trace = build(&rt);
        let lease = SimulationBuilder::new(ProtocolKind::Lease {
            timeout: Duration::from_secs(1_000_000_000),
        })
        .run(&trace);
        let callback = SimulationBuilder::new(ProtocolKind::Callback).run(&trace);
        prop_assert_eq!(lease.summary.messages, callback.summary.messages);
    }
}
