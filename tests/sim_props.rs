//! Randomized (seeded, deterministic) tests over random small traces:
//! the invariants the paper's algorithms promise, checked on arbitrary
//! interleavings of reads and writes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vl_core::{ProtocolKind, SimulationBuilder};
use vl_types::{ClientId, Duration, ObjectId, ServerId, Timestamp};
use vl_workload::{Trace, TraceEvent, UniverseBuilder};

/// A compact generated workload: topology sizes plus event list.
#[derive(Clone, Debug)]
struct RandomTrace {
    volumes: u32,
    objects_per_volume: u64,
    events: Vec<TraceEvent>,
}

fn arb_trace(rng: &mut StdRng) -> RandomTrace {
    let volumes = rng.gen_range(2u32..5);
    let objects_per_volume = rng.gen_range(1u64..4);
    let n_objects = u64::from(volumes) * objects_per_volume;
    let mut events: Vec<TraceEvent> = (0..rng.gen_range(1usize..200))
        .map(|_| {
            let at = Timestamp::from_millis(rng.gen_range(0u64..50_000) * 100);
            let object = ObjectId(rng.gen_range(0..n_objects));
            if rng.gen_bool(0.5) {
                TraceEvent::Read {
                    at,
                    client: ClientId(rng.gen_range(0u32..4)),
                    object,
                }
            } else {
                TraceEvent::Write { at, object }
            }
        })
        .collect();
    events.sort_by_key(|e| e.at());
    RandomTrace {
        volumes,
        objects_per_volume,
        events,
    }
}

fn build(rt: &RandomTrace) -> Trace {
    let mut b = UniverseBuilder::new();
    for v in 0..rt.volumes {
        let vol = b.add_volume(ServerId(v));
        for _ in 0..rt.objects_per_volume {
            b.add_object(vol, 500);
        }
    }
    Trace::new(b.build(), rt.events.clone())
}

fn strong_kinds() -> Vec<ProtocolKind> {
    vec![
        ProtocolKind::PollEachRead,
        ProtocolKind::Callback,
        ProtocolKind::Lease {
            timeout: Duration::from_secs(120),
        },
        ProtocolKind::WaitingLease {
            timeout: Duration::from_secs(120),
        },
        ProtocolKind::VolumeLease {
            volume_timeout: Duration::from_secs(15),
            object_timeout: Duration::from_secs(500),
        },
        ProtocolKind::DelayedInvalidation {
            volume_timeout: Duration::from_secs(15),
            object_timeout: Duration::from_secs(500),
            inactive_discard: Duration::MAX,
        },
        ProtocolKind::DelayedInvalidation {
            volume_timeout: Duration::from_secs(15),
            object_timeout: Duration::from_secs(500),
            inactive_discard: Duration::from_secs(60),
        },
    ]
}

/// No strongly consistent algorithm ever serves a stale read, on any
/// interleaving of reads and writes. (The engine also asserts this
/// internally; the randomized test drives it across random traces.)
#[test]
fn strong_protocols_never_stale() {
    let mut rng = StdRng::seed_from_u64(0x57a1e);
    for case in 0..64 {
        let trace = build(&arb_trace(&mut rng));
        for kind in strong_kinds() {
            let report = SimulationBuilder::new(kind).run(&trace);
            assert_eq!(report.summary.stale_reads, 0, "case {case}: {kind}");
            assert_eq!(report.summary.reads, trace.read_count(), "case {case}");
        }
    }
}

/// Delayed invalidations never send more messages than basic volume
/// leases at identical parameters (§3.2's construction: messages are
/// only removed, deferred, or batched).
#[test]
fn delay_never_beats_volume_on_messages() {
    let mut rng = StdRng::seed_from_u64(0xde1a);
    for case in 0..64 {
        let trace = build(&arb_trace(&mut rng));
        let tv = Duration::from_secs(15);
        let t = Duration::from_secs(500);
        let volume = SimulationBuilder::new(ProtocolKind::VolumeLease {
            volume_timeout: tv,
            object_timeout: t,
        })
        .run(&trace);
        let delay = SimulationBuilder::new(ProtocolKind::DelayedInvalidation {
            volume_timeout: tv,
            object_timeout: t,
            inactive_discard: Duration::MAX,
        })
        .run(&trace);
        assert!(
            delay.summary.messages <= volume.summary.messages,
            "case {case}"
        );
    }
}

/// Simulations are pure functions of the trace.
#[test]
fn simulation_is_deterministic() {
    let mut rng = StdRng::seed_from_u64(0xd37);
    for case in 0..64 {
        let trace = build(&arb_trace(&mut rng));
        let kind = ProtocolKind::DelayedInvalidation {
            volume_timeout: Duration::from_secs(15),
            object_timeout: Duration::from_secs(500),
            inactive_discard: Duration::from_secs(60),
        };
        let a = SimulationBuilder::new(kind).run(&trace);
        let b = SimulationBuilder::new(kind).run(&trace);
        assert_eq!(a.summary, b.summary, "case {case}");
        assert_eq!(
            a.metrics.total_bytes(),
            b.metrics.total_bytes(),
            "case {case}"
        );
    }
}

/// Poll(0) is PollEachRead (the paper's degenerate case), and
/// Poll's staleness is bounded: stale reads only happen within the
/// trust window after a write.
#[test]
fn poll_degenerates_and_bounds() {
    let mut rng = StdRng::seed_from_u64(0x9011);
    for case in 0..64 {
        let trace = build(&arb_trace(&mut rng));
        let per = SimulationBuilder::new(ProtocolKind::PollEachRead).run(&trace);
        let p0 = SimulationBuilder::new(ProtocolKind::Poll {
            timeout: Duration::ZERO,
        })
        .run(&trace);
        assert_eq!(per.summary.messages, p0.summary.messages, "case {case}");
        assert_eq!(p0.summary.stale_reads, 0, "case {case}");
    }
}

/// Waiting leases never send more messages than invalidating leases
/// at equal t (they only remove invalidation traffic), and they are
/// the only strong algorithm whose writes block without failures.
#[test]
fn waiting_lease_only_removes_messages() {
    let mut rng = StdRng::seed_from_u64(0x1417);
    for case in 0..64 {
        let trace = build(&arb_trace(&mut rng));
        let t = Duration::from_secs(120);
        let lease = SimulationBuilder::new(ProtocolKind::Lease { timeout: t }).run(&trace);
        let wait = SimulationBuilder::new(ProtocolKind::WaitingLease { timeout: t }).run(&trace);
        assert!(
            wait.summary.messages <= lease.summary.messages,
            "case {case}"
        );
        assert_eq!(lease.summary.max_write_delay_secs, 0.0, "case {case}");
        assert!(
            wait.summary.max_write_delay_secs <= t.as_secs_f64(),
            "case {case}"
        );
    }
}

/// Lease(∞-ish) has the same steady-state message behaviour as
/// Callback: with leases outlasting the trace nothing ever expires.
#[test]
fn infinite_lease_is_callback() {
    let mut rng = StdRng::seed_from_u64(0x1ca);
    for case in 0..64 {
        let trace = build(&arb_trace(&mut rng));
        let lease = SimulationBuilder::new(ProtocolKind::Lease {
            timeout: Duration::from_secs(1_000_000_000),
        })
        .run(&trace);
        let callback = SimulationBuilder::new(ProtocolKind::Callback).run(&trace);
        assert_eq!(
            lease.summary.messages, callback.summary.messages,
            "case {case}"
        );
    }
}
