//! Concurrency soak test: many clients, a hostile network, and a busy
//! writer, all at once. The invariant under test is the paper's
//! definition of strong consistency — a read returns the result of the
//! latest completed write — checked from the outside:
//!
//! 1. every successful read parses a version-stamped payload and the
//!    observed version per (client, object) never goes backwards;
//! 2. a read that begins after a write completed never returns an older
//!    version than that write (checked against a committed-version
//!    floor recorded before each read);
//! 3. after the writer stops and partitions heal, every client converges
//!    to the final version of every object.

use bytes::Bytes;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration as StdDuration;
use vl_client::{CacheClient, ClientConfig};
use vl_net::{InMemoryNetwork, NodeId};
use vl_server::{LeaseServer, ServerConfig, WallClock};
use vl_types::{ClientId, ObjectId, ServerId};

const SRV: ServerId = ServerId(0);
const OBJECTS: u64 = 12;
const CLIENTS: u32 = 6;
const WRITES: u64 = 60;

fn payload(object: ObjectId, version: u64) -> Bytes {
    Bytes::from(format!("{}:{version}", object.raw()))
}

fn parse(data: &[u8]) -> (u64, u64) {
    let s = std::str::from_utf8(data).expect("utf8 payload");
    let (o, v) = s.split_once(':').expect("obj:version payload");
    (o.parse().unwrap(), v.parse().unwrap())
}

#[test]
#[ignore = "long soak — run via --include-ignored or the nightly workflow"]
fn soak_no_stale_reads_under_churn_and_partitions() {
    let net = InMemoryNetwork::new();
    let clock = WallClock::new();
    let server = LeaseServer::spawn(
        ServerConfig {
            volume_lease: StdDuration::from_millis(250),
            object_lease: StdDuration::from_secs(30),
            ..ServerConfig::new(SRV)
        },
        net.endpoint(NodeId::Server(SRV)),
        clock,
    );
    for i in 0..OBJECTS {
        server.create_object(ObjectId(i), payload(ObjectId(i), 1));
    }

    // committed[i] = latest version whose write has COMPLETED.
    let committed: Arc<Vec<AtomicU64>> =
        Arc::new((0..OBJECTS).map(|_| AtomicU64::new(1)).collect());

    let clients: Vec<CacheClient> = (0..CLIENTS)
        .map(|i| {
            CacheClient::spawn(
                ClientConfig {
                    request_timeout: StdDuration::from_millis(200),
                    max_retries: 2,
                    ..ClientConfig::new(ClientId(i), SRV)
                },
                net.endpoint(NodeId::Client(ClientId(i))),
                clock,
            )
        })
        .collect();

    std::thread::scope(|scope| {
        // Writer: version-stamped round-robin writes.
        let committed_w = Arc::clone(&committed);
        let server_ref = &server;
        scope.spawn(move || {
            for v in 2..2 + WRITES {
                let object = ObjectId(v % OBJECTS);
                server_ref.write(object, payload(object, v));
                committed_w[object.raw() as usize].store(v, Ordering::SeqCst);
                std::thread::sleep(StdDuration::from_millis(7));
            }
        });

        // Fault injector: flap one client's connectivity.
        let net_ref = &net;
        scope.spawn(move || {
            for _ in 0..6 {
                net_ref.partition(NodeId::Client(ClientId(0)), NodeId::Server(SRV));
                std::thread::sleep(StdDuration::from_millis(60));
                net_ref.heal(NodeId::Client(ClientId(0)), NodeId::Server(SRV));
                std::thread::sleep(StdDuration::from_millis(60));
            }
        });

        // Readers: hammer random objects, checking monotonicity and the
        // committed floor.
        for (ci, client) in clients.iter().enumerate() {
            let committed_r = Arc::clone(&committed);
            scope.spawn(move || {
                let mut last_seen = vec![0u64; OBJECTS as usize];
                let mut x = 0x9E37_79B9u64.wrapping_mul(ci as u64 + 1) | 1;
                for _ in 0..250 {
                    // xorshift for cheap deterministic-ish object choice
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let object = ObjectId(x % OBJECTS);
                    let floor = committed_r[object.raw() as usize].load(Ordering::SeqCst);
                    match client.read(object) {
                        Err(_) => { /* partitioned: refusing is correct */ }
                        Ok(data) => {
                            let (o, v) = parse(&data);
                            assert_eq!(o, object.raw(), "payload routed to wrong object");
                            assert!(
                                v >= last_seen[object.raw() as usize],
                                "client {ci} saw {object} go backwards: {} then {v}",
                                last_seen[object.raw() as usize]
                            );
                            assert!(
                                v >= floor,
                                "client {ci} read {object}@v{v} after v{floor} committed"
                            );
                            last_seen[object.raw() as usize] = v;
                        }
                    }
                    std::thread::sleep(StdDuration::from_millis(3));
                }
            });
        }
    });

    // Quiesce: heal everything and let leases settle, then converge.
    net.heal(NodeId::Client(ClientId(0)), NodeId::Server(SRV));
    std::thread::sleep(StdDuration::from_millis(300));
    for client in &clients {
        for i in 0..OBJECTS {
            let object = ObjectId(i);
            let data = client.read(object).expect("healed network");
            let (_, v) = parse(&data);
            assert_eq!(
                v,
                committed[i as usize].load(Ordering::SeqCst),
                "client did not converge on {object}"
            );
        }
    }

    // Sanity on the metrics the soak produced.
    let stats = server.stats();
    assert_eq!(stats.writes, WRITES, "creates are not writes");
    for client in clients {
        let s = client.stats();
        assert!(s.local_reads + s.remote_reads > 0);
        client.shutdown();
    }
    server.shutdown();
}
