//! The live networked stack under injected faults: chaos proxy over
//! real loopback TCP, deterministic fault schedules, kill-and-restart
//! recovery, and server-side demotion of dropped connections.
//!
//! These tests exercise the paper's safety claim end to end: no client
//! ever observes a stale read, and writes are delayed at most
//! `min(t, t_v)` plus scheduling slack — no matter what the network
//! does in between.

use bytes::Bytes;
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant};
use vl_client::{CacheClient, ClientConfig};
use vl_net::chaos::{ChaosConfig, ChaosNet};
use vl_net::retry::RetryPolicy;
use vl_net::tcp::{TcpConfig, TcpNode};
use vl_net::{Channel, InMemoryNetwork, NodeId};
use vl_server::{LeaseServer, ServerConfig, WallClock};
use vl_types::{ClientId, Duration, Epoch, ObjectId, ServerId};

const SRV: ServerId = ServerId(0);

/// TCP supervision tuned for test latency: fast read polls, quick
/// redial backoff, and an idle deadline short enough to notice a dead
/// peer within the test budget.
fn quick_tcp() -> TcpConfig {
    TcpConfig {
        read_tick: StdDuration::from_millis(25),
        idle_deadline: Some(StdDuration::from_secs(5)),
        redial: RetryPolicy {
            base: StdDuration::from_millis(25),
            max: StdDuration::from_millis(200),
            ..RetryPolicy::default()
        },
        supervise_every: StdDuration::from_millis(10),
        ..TcpConfig::default()
    }
}

/// A client config with a deep retry budget so individual request
/// drops never fail a read outright.
fn patient_client(id: u32) -> ClientConfig {
    ClientConfig {
        request_timeout: StdDuration::from_millis(150),
        max_retries: 40,
        ..ClientConfig::new(ClientId(id), SRV)
    }
}

fn stable_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("vl_fault_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

/// Polls `cond` until it holds or `for_ms` elapses.
fn eventually(for_ms: u64, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + StdDuration::from_millis(for_ms);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(StdDuration::from_millis(10));
    }
    cond()
}

/// Payloads encode the committed version as `v<N>`; parsing one back
/// out lets reads prove they are not stale.
fn version_of(data: &[u8]) -> u64 {
    let s = std::str::from_utf8(data).expect("utf8 payload");
    s.rsplit('v')
        .next()
        .unwrap()
        .parse()
        .expect("versioned payload")
}

/// Safety and liveness through the chaos proxy over real TCP: seeded
/// drops, delays, and resets on both directions, plus an explicit
/// one-way partition window. Successful reads must never go backwards
/// in version, every write must commit within `min(t, t_v)` plus
/// slack, and once the chaos stops the system must quiesce to the
/// latest version.
#[test]
fn no_stale_reads_and_bounded_write_delay_under_chaos() {
    const OBJ: ObjectId = ObjectId(1);
    let t_v = StdDuration::from_millis(500);
    let chaos = ChaosNet::new(ChaosConfig {
        seed: 42,
        drop_prob: 0.15,
        delay_prob: 0.20,
        max_delay_ms: 20,
        reset_prob: 0.02,
        reset_burst: 2,
        ..ChaosConfig::default()
    });

    let clock = WallClock::new();
    let server_node =
        TcpNode::listen_with(NodeId::Server(SRV), "127.0.0.1:0", quick_tcp()).unwrap();
    let addr = server_node.local_addr().unwrap();
    let server = LeaseServer::spawn(
        ServerConfig {
            volume_lease: t_v,
            object_lease: StdDuration::from_secs(10),
            ..ServerConfig::new(SRV)
        },
        chaos.wrap(server_node),
        clock,
    );
    server.create_object(OBJ, Bytes::from_static(b"o1 v1"));

    let client_node = TcpNode::dial_with(NodeId::Client(ClientId(1)), addr, quick_tcp()).unwrap();
    let client = CacheClient::spawn(patient_client(1), chaos.wrap(client_node), clock);

    let mut version = 1u64;
    let mut last_seen = 0u64;
    let mut successes = 0u32;
    for round in 0..12u32 {
        if round == 5 {
            // A one-way partition: the server cannot reach the client
            // for 300 ms, exactly the window where dropped
            // invalidations would cause staleness if leases lied.
            chaos.partition_one_way(
                NodeId::Server(SRV),
                NodeId::Client(ClientId(1)),
                StdDuration::from_millis(300),
            );
        }
        version += 1;
        let out = server.write(OBJ, Bytes::from(format!("o1 v{version}")));
        // Paper bound: write delay ≤ min(t, t_v); allow scheduling slack.
        assert!(
            out.delay <= Duration::from_millis(t_v.as_millis() as u64 + 500),
            "round {round}: write delayed {} — exceeds t_v + slack",
            out.delay
        );
        for _ in 0..3 {
            if let Ok(data) = client.read(OBJ) {
                let v = version_of(&data);
                assert!(
                    v >= last_seen,
                    "stale read: saw v{v} after having seen v{last_seen}"
                );
                last_seen = v;
                successes += 1;
            }
        }
    }
    assert!(successes > 0, "chaos never let a single read through");
    let counters = chaos.counters();
    assert!(
        counters.dropped > 0,
        "chaos injected no drops: {counters:?}"
    );

    // Faults stop; the system must quiesce: a fresh write propagates
    // and the client converges on the latest version.
    chaos.stop();
    version += 1;
    server.write(OBJ, Bytes::from(format!("o1 v{version}")));
    assert!(
        eventually(5_000, || client
            .read(OBJ)
            .is_ok_and(|d| version_of(&d) == version)),
        "client never converged on v{version} after chaos stopped"
    );
    assert!(
        !client.is_degraded(),
        "quiesced client still reports a degraded link"
    );
    client.shutdown();
    server.shutdown();
}

/// The chaos schedule is a pure function of (seed, send sequence):
/// two nets with the same seed fed the identical sequence emit
/// byte-identical schedules, and a different seed diverges.
#[test]
fn chaos_schedule_is_deterministic_per_seed() {
    let run = |seed: u64| -> String {
        let chaos = ChaosNet::new(ChaosConfig {
            seed,
            drop_prob: 0.2,
            delay_prob: 0.2,
            max_delay_ms: 10,
            reorder_prob: 0.1,
            reset_prob: 0.05,
            reset_burst: 2,
            ..ChaosConfig::default()
        });
        let net = InMemoryNetwork::new();
        let a = chaos.wrap(net.endpoint(NodeId::Client(ClientId(1))));
        let _b = net.endpoint(NodeId::Server(SRV));
        for i in 0..300u32 {
            let _ = a.send(NodeId::Server(SRV), Bytes::from(i.to_le_bytes().to_vec()));
        }
        chaos.schedule()
    };
    let first = run(7);
    assert!(!first.is_empty(), "schedule recorded no verdicts");
    assert_eq!(first, run(7), "same seed must replay byte-identically");
    assert_ne!(first, run(8), "different seed should diverge");
}

/// Kill-and-restart over real TCP: the server crashes, restarts from
/// stable storage on a NEW port (the old one lingers in TIME_WAIT),
/// and the client — told the new address — auto-reconnects, observes
/// the epoch bump, runs the reconnection protocol, and reads fresh
/// data. The degraded spell is visible while the server is down.
#[test]
fn kill_and_restart_recovers_through_reconnection() {
    const OBJ: ObjectId = ObjectId(1);
    let path = stable_path("kill_restart.stable");
    let cfg = |p: std::path::PathBuf| ServerConfig {
        object_lease: StdDuration::from_secs(10),
        volume_lease: StdDuration::from_millis(400),
        stable_path: Some(p),
        ..ServerConfig::new(SRV)
    };
    let clock = WallClock::new();
    let server_node =
        TcpNode::listen_with(NodeId::Server(SRV), "127.0.0.1:0", quick_tcp()).unwrap();
    let addr = server_node.local_addr().unwrap();
    let server = LeaseServer::spawn(cfg(path.clone()), server_node, clock);
    server.create_object(OBJ, Bytes::from_static(b"k v1"));

    // Keep a handle on the client's transport so we can repoint it at
    // the restarted server (stand-in for service discovery).
    let client_node =
        Arc::new(TcpNode::dial_with(NodeId::Client(ClientId(1)), addr, quick_tcp()).unwrap());
    let client = CacheClient::spawn(patient_client(1), Arc::clone(&client_node), clock);
    assert_eq!(&client.read(OBJ).unwrap()[..], b"k v1");
    assert_eq!(client.server_epoch(), Epoch(0));

    // Kill. The driver drops its endpoint, which closes every socket;
    // the client's reader sees EOF and flags the link degraded.
    server.crash();
    assert!(
        eventually(3_000, || client.is_degraded()),
        "client never noticed the server die"
    );

    // Restart from the same stable record on a fresh port.
    let server_node =
        TcpNode::listen_with(NodeId::Server(SRV), "127.0.0.1:0", quick_tcp()).unwrap();
    let new_addr = server_node.local_addr().unwrap();
    let server = LeaseServer::spawn(cfg(path.clone()), server_node, clock);
    server.create_object(OBJ, Bytes::from_static(b"k v1")); // reload "disk"
    assert_eq!(server.stats().epoch, Epoch(1), "epoch bumps on reboot");
    // A write during the outage is what makes the client's copy stale.
    server.write(OBJ, Bytes::from_static(b"k v2"));
    client_node.set_peer_addr(NodeId::Server(SRV), new_addr);

    // The supervisor re-dials, the client probes with its stale epoch,
    // and the MUST_RENEW_ALL exchange re-syncs everything.
    assert!(
        eventually(5_000, || client.server_epoch() == Epoch(1)),
        "client never observed the epoch bump (still at {:?})",
        client.server_epoch()
    );
    assert!(
        eventually(5_000, || client.read(OBJ).is_ok_and(|d| &d[..] == b"k v2")),
        "client never read post-restart data"
    );
    let stats = client.stats();
    assert!(stats.reconnections >= 1, "no reconnection recorded");
    assert!(stats.epoch_changes >= 1, "no epoch change recorded");
    assert!(stats.degraded_spells >= 1, "no degraded spell recorded");
    assert!(
        eventually(2_000, || !client.is_degraded()),
        "link still degraded after recovery"
    );
    client.shutdown();
    server.shutdown();
    let _ = std::fs::remove_file(&path);
}

/// A client whose connection drops is demoted to the unreachable set
/// (§3.1.1) — its leases stay intact, so writes still wait them out,
/// but the server stops counting on reaching it.
#[test]
fn server_demotes_dropped_connection_to_unreachable() {
    const OBJ: ObjectId = ObjectId(1);
    let t_v = StdDuration::from_millis(300);
    let clock = WallClock::new();
    let server_node =
        TcpNode::listen_with(NodeId::Server(SRV), "127.0.0.1:0", quick_tcp()).unwrap();
    let addr = server_node.local_addr().unwrap();
    let server = LeaseServer::spawn(
        ServerConfig {
            volume_lease: t_v,
            object_lease: StdDuration::from_secs(10),
            ..ServerConfig::new(SRV)
        },
        server_node,
        clock,
    );
    server.create_object(OBJ, Bytes::from_static(b"u v1"));

    let client = CacheClient::spawn(
        patient_client(1),
        TcpNode::dial_with(NodeId::Client(ClientId(1)), addr, quick_tcp()).unwrap(),
        clock,
    );
    assert_eq!(&client.read(OBJ).unwrap()[..], b"u v1");
    assert_eq!(server.stats().unreachable, 0);

    // Shutdown drops the client's TcpNode: the server's reader sees the
    // close and the driver feeds PeerDisconnected into the machine.
    client.shutdown();
    assert!(
        eventually(3_000, || {
            let s = server.stats();
            s.disconnects >= 1 && s.unreachable == 1
        }),
        "server never demoted the dropped client: {:?}",
        server.stats()
    );

    // Safety half: the lease itself was NOT revoked, so a write issued
    // now still waits out the volume lease the dead client holds.
    let started = Instant::now();
    let out = server.write(OBJ, Bytes::from_static(b"u v2"));
    let waited = started.elapsed();
    assert!(
        out.waited_out >= 1 || waited >= StdDuration::from_millis(50),
        "write ignored the disconnected client's still-valid lease"
    );
    assert!(
        out.delay <= Duration::from_millis(t_v.as_millis() as u64 + 500),
        "write over-waited: {}",
        out.delay
    );
    server.shutdown();
}
