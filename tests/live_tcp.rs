//! The full live stack over real TCP loopback: same protocol code, real
//! sockets.

use bytes::Bytes;
use vl_client::{CacheClient, ClientConfig};
use vl_net::tcp::TcpNode;
use vl_net::NodeId;
use vl_server::{LeaseServer, ServerConfig, WallClock};
use vl_types::{ClientId, ObjectId, ServerId};

const OBJ: ObjectId = ObjectId(1);
const SRV: ServerId = ServerId(0);

#[test]
fn read_write_invalidate_over_tcp() {
    let clock = WallClock::new();
    let server_node = TcpNode::listen(NodeId::Server(SRV), "127.0.0.1:0").unwrap();
    let addr = server_node.local_addr().unwrap();
    let server = LeaseServer::spawn(ServerConfig::new(SRV), server_node, clock);
    server.create_object(OBJ, Bytes::from_static(b"tcp-v1"));

    let c1 = CacheClient::spawn(
        ClientConfig::new(ClientId(1), SRV),
        TcpNode::dial(NodeId::Client(ClientId(1)), addr).unwrap(),
        clock,
    );
    let c2 = CacheClient::spawn(
        ClientConfig::new(ClientId(2), SRV),
        TcpNode::dial(NodeId::Client(ClientId(2)), addr).unwrap(),
        clock,
    );

    assert_eq!(&c1.read(OBJ).unwrap()[..], b"tcp-v1");
    assert_eq!(&c2.read(OBJ).unwrap()[..], b"tcp-v1");
    // Cache hit on the second read.
    assert_eq!(&c1.read(OBJ).unwrap()[..], b"tcp-v1");
    assert_eq!(c1.stats().local_reads, 1);

    let out = server.write(OBJ, Bytes::from_static(b"tcp-v2"));
    assert_eq!(out.invalidations_sent, 2);
    assert_eq!(out.waited_out, 0);

    assert_eq!(&c1.read(OBJ).unwrap()[..], b"tcp-v2");
    assert_eq!(&c2.read(OBJ).unwrap()[..], b"tcp-v2");

    c1.shutdown();
    c2.shutdown();
    server.shutdown();
}

#[test]
fn many_objects_many_rounds_over_tcp() {
    let clock = WallClock::new();
    let server_node = TcpNode::listen(NodeId::Server(SRV), "127.0.0.1:0").unwrap();
    let addr = server_node.local_addr().unwrap();
    let server = LeaseServer::spawn(ServerConfig::new(SRV), server_node, clock);
    for i in 0..20u64 {
        server.create_object(ObjectId(i), Bytes::from(format!("obj{i}-v1").into_bytes()));
    }
    let c = CacheClient::spawn(
        ClientConfig::new(ClientId(1), SRV),
        TcpNode::dial(NodeId::Client(ClientId(1)), addr).unwrap(),
        clock,
    );
    for round in 1..=3u64 {
        for i in 0..20u64 {
            let want = format!("obj{i}-v{round}");
            assert_eq!(&c.read(ObjectId(i)).unwrap()[..], want.as_bytes());
        }
        if round < 3 {
            for i in 0..20u64 {
                server.write(
                    ObjectId(i),
                    Bytes::from(format!("obj{i}-v{}", round + 1).into_bytes()),
                );
            }
        }
    }
    // 60 reads total; after the first round most are cache hits between
    // writes.
    let stats = c.stats();
    assert_eq!(stats.local_reads + stats.remote_reads, 60);
    c.shutdown();
    server.shutdown();
}
