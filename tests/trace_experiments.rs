//! Cross-crate integration: the qualitative claims of §5 checked
//! end-to-end on the smoke workload, plus the BU-parser → write-model →
//! simulation pipeline.

use vl_bench_shim::*;
use vl_core::{ProtocolKind, SimulationBuilder};
use vl_types::Duration;
use vl_workload::{bu, TraceGenerator, WorkloadConfig, WriteModel, WriteModelConfig};

/// Re-exported experiment helpers (the bench crate is not a dependency
/// of the facade, so the relevant pieces are inlined here).
mod vl_bench_shim {
    use vl_core::{ProtocolKind, SimulationBuilder};
    use vl_types::Duration;
    use vl_workload::Trace;

    pub fn messages(trace: &Trace, kind: ProtocolKind) -> u64 {
        SimulationBuilder::new(kind).run(trace).summary.messages
    }

    pub fn secs(s: u64) -> Duration {
        Duration::from_secs(s)
    }
}

fn smoke() -> vl_workload::Trace {
    TraceGenerator::new(WorkloadConfig::smoke()).generate()
}

/// §5.1's headline: with the write-delay bound fixed at t_v, the volume
/// algorithms beat the object-lease algorithm that must set t = t_v.
#[test]
fn volume_algorithms_beat_bounded_lease() {
    let trace = smoke();
    let bound = 10;
    let lease = messages(
        &trace,
        ProtocolKind::Lease {
            timeout: secs(bound),
        },
    );
    // The volume algorithms may stretch the object lease arbitrarily.
    let volume = (2..=6)
        .map(|p| {
            messages(
                &trace,
                ProtocolKind::VolumeLease {
                    volume_timeout: secs(bound),
                    object_timeout: secs(10u64.pow(p)),
                },
            )
        })
        .min()
        .unwrap();
    let delay = (2..=6)
        .map(|p| {
            messages(
                &trace,
                ProtocolKind::DelayedInvalidation {
                    volume_timeout: secs(bound),
                    object_timeout: secs(10u64.pow(p)),
                    inactive_discard: Duration::MAX,
                },
            )
        })
        .min()
        .unwrap();
    assert!(
        volume < lease,
        "Volume({bound}, best t) = {volume} must beat Lease({bound}) = {lease}"
    );
    assert!(
        delay <= volume,
        "Delay must beat basic volume leases: {delay} vs {volume}"
    );
    let savings = 1.0 - delay as f64 / lease as f64;
    assert!(
        savings > 0.15,
        "paper reports ≈39% message savings; got {:.0}%",
        savings * 100.0
    );
}

/// The Lease/Volume curves dip with growing t, then invalidations push
/// back (the U-ish shape of Figure 5); Delay declines monotonically-ish.
#[test]
fn figure5_shape_holds() {
    let trace = smoke();
    let sweep = [10u64, 1_000, 100_000];
    let lease: Vec<u64> = sweep
        .iter()
        .map(|&t| messages(&trace, ProtocolKind::Lease { timeout: secs(t) }))
        .collect();
    assert!(
        lease[0] > lease[1],
        "renewals dominate at small t: {lease:?}"
    );

    let delay: Vec<u64> = sweep
        .iter()
        .map(|&t| {
            messages(
                &trace,
                ProtocolKind::DelayedInvalidation {
                    volume_timeout: secs(10),
                    object_timeout: secs(t),
                    inactive_discard: Duration::MAX,
                },
            )
        })
        .collect();
    assert!(
        delay.windows(2).all(|w| w[0] >= w[1]),
        "Delay sends strictly fewer messages as t grows (§5.1): {delay:?}"
    );
}

/// Poll trades staleness for traffic: longer windows mean fewer messages
/// and more stale reads (the 1%-at-10⁵ / 5%-at-10⁶ effect, in miniature).
#[test]
fn poll_staleness_grows_with_window() {
    let trace = smoke();
    let run = |t: u64| {
        let r = SimulationBuilder::new(ProtocolKind::Poll { timeout: secs(t) }).run(&trace);
        (r.summary.messages, r.summary.stale_fraction)
    };
    let (m_short, s_short) = run(100);
    let (m_long, s_long) = run(100_000);
    assert!(m_long < m_short);
    assert!(s_long > s_short);
    assert!(
        s_long > 0.0,
        "a day-plus window across writes must go stale"
    );
}

/// BU-format text parses into a trace that runs through the write model
/// and every protocol.
#[test]
fn bu_pipeline_end_to_end() {
    // A synthetic log in the BU format: 3 machines, 2 servers, 5 URLs.
    let mut log = String::new();
    for i in 0..200 {
        let machine = ["cs20", "cs21", "cs22"][i % 3];
        let host = ["http://a.edu", "http://b.edu"][i % 2];
        let page = i % 5;
        let ts = 800_000_000.0 + i as f64 * 37.5;
        log.push_str(&format!(
            "{machine} {ts} {i} \"{host}/page{page}.html\" {} 0.2\n",
            1000 + i
        ));
    }
    let parsed = bu::parse_reader(log.as_bytes()).expect("parses");
    assert_eq!(parsed.trace.read_count(), 200);
    assert_eq!(parsed.skipped_lines, 0);

    // Synthesize writes over the parsed universe, as §4.2 does for the
    // real traces (high rates so the short span actually gets writes).
    let mut rank: Vec<vl_types::ObjectId> = (0..parsed.trace.universe().object_count() as u64)
        .map(vl_types::ObjectId)
        .collect();
    rank.sort();
    let mut rng = {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(5)
    };
    let model = WriteModel::assign(
        &rank,
        WriteModelConfig {
            rates_per_day: [200.0, 400.0, 300.0, 250.0],
            ..WriteModelConfig::paper()
        },
        &mut rng,
    );
    let days = parsed.trace.span().as_secs_f64() / 86_400.0;
    let writes = model.generate(parsed.trace.universe(), days.max(0.01), &mut rng);
    assert!(!writes.is_empty(), "write synthesis produced nothing");
    let mut events = parsed.trace.events().to_vec();
    events.extend(writes);
    let trace = vl_workload::Trace::new(parsed.trace.universe().clone(), events);

    for kind in [
        ProtocolKind::Callback,
        ProtocolKind::VolumeLease {
            volume_timeout: secs(10),
            object_timeout: secs(10_000),
        },
    ] {
        let report = SimulationBuilder::new(kind).run(&trace);
        assert_eq!(report.summary.stale_reads, 0);
        assert!(report.summary.messages > 0);
    }
}

/// Server state ordering at short timeouts: Lease < Callback (§5.2).
#[test]
fn short_leases_save_server_memory() {
    let trace = smoke();
    let top = trace.servers_by_popularity()[0].0;
    let lease = SimulationBuilder::new(ProtocolKind::Lease { timeout: secs(10) }).run(&trace);
    let callback = SimulationBuilder::new(ProtocolKind::Callback).run(&trace);
    assert!(
        lease.avg_state_bytes(top) < callback.avg_state_bytes(top),
        "lease {} vs callback {}",
        lease.avg_state_bytes(top),
        callback.avg_state_bytes(top)
    );
}
