//! Server crash/recovery integration tests (§3.1.2): epoch bumping,
//! write delay until pre-crash volume leases expire, and stale-epoch
//! clients re-syncing through the reconnection protocol.

use bytes::Bytes;
use std::time::Duration as StdDuration;
use vl_client::{CacheClient, ClientConfig};
use vl_net::{InMemoryNetwork, NodeId};
use vl_server::{LeaseServer, ServerConfig, WallClock};
use vl_types::{ClientId, Duration, Epoch, ObjectId, ServerId};

const OBJ: ObjectId = ObjectId(1);
const SRV: ServerId = ServerId(0);

fn stable_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("vl_recovery_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

fn config(path: std::path::PathBuf) -> ServerConfig {
    ServerConfig {
        object_lease: StdDuration::from_secs(10),
        volume_lease: StdDuration::from_millis(600),
        stable_path: Some(path),
        ..ServerConfig::new(SRV)
    }
}

#[test]
fn restart_bumps_epoch_and_delays_writes_past_old_leases() {
    let path = stable_path("bump.stable");
    let net = InMemoryNetwork::new();
    let clock = WallClock::new();
    let server = LeaseServer::spawn(
        config(path.clone()),
        net.endpoint(NodeId::Server(SRV)),
        clock,
    );
    server.create_object(OBJ, Bytes::from_static(b"v1"));
    assert_eq!(server.stats().epoch, Epoch(0));

    let c1 = CacheClient::spawn(
        ClientConfig::new(ClientId(1), SRV),
        net.endpoint(NodeId::Client(ClientId(1))),
        clock,
    );
    // The read grants a 600 ms volume lease, recorded on stable storage.
    assert_eq!(&c1.read(OBJ).unwrap()[..], b"v1");

    // Crash immediately: all volatile lease state is lost.
    server.crash();
    let server = LeaseServer::spawn(
        config(path.clone()),
        net.endpoint(NodeId::Server(SRV)),
        clock,
    );
    server.create_object(OBJ, Bytes::from_static(b"v1")); // reload "disk"
    assert_eq!(server.stats().epoch, Epoch(1), "epoch bumped on reboot");

    // A write issued right after the reboot must wait out the pre-crash
    // volume lease — the client could still be reading its copy.
    let out = server.write(OBJ, Bytes::from_static(b"v2"));
    assert!(
        out.delay >= Duration::from_millis(200),
        "write must wait for pre-crash leases, waited only {}",
        out.delay
    );
    assert!(
        out.delay <= Duration::from_millis(1200),
        "but no longer than the recorded expiry (+slack): {}",
        out.delay
    );

    // The client's next renewal presents epoch 0 → MUST_RENEW_ALL →
    // its stale copy is invalidated and the read fetches v2.
    let data = c1.read(OBJ).expect("reconnection");
    assert_eq!(&data[..], b"v2");
    assert!(c1.stats().reconnections >= 1);
    c1.shutdown();
    server.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn fresh_copy_survives_recovery_without_refetch() {
    // If nothing was written during the outage, reconnection renews the
    // client's leases instead of invalidating (renewList path).
    let path = stable_path("renew.stable");
    let net = InMemoryNetwork::new();
    let clock = WallClock::new();
    let server = LeaseServer::spawn(
        config(path.clone()),
        net.endpoint(NodeId::Server(SRV)),
        clock,
    );
    server.create_object(OBJ, Bytes::from_static(b"v1"));
    let c1 = CacheClient::spawn(
        ClientConfig::new(ClientId(1), SRV),
        net.endpoint(NodeId::Client(ClientId(1))),
        clock,
    );
    assert_eq!(&c1.read(OBJ).unwrap()[..], b"v1");

    server.crash();
    let server = LeaseServer::spawn(
        config(path.clone()),
        net.endpoint(NodeId::Server(SRV)),
        clock,
    );
    server.create_object(OBJ, Bytes::from_static(b"v1"));

    // Wait out the old volume lease so the client must renew.
    std::thread::sleep(StdDuration::from_millis(700));
    assert_eq!(&c1.read(OBJ).unwrap()[..], b"v1");
    assert!(
        c1.stats().reconnections >= 1,
        "epoch mismatch forced re-sync"
    );
    assert_eq!(
        c1.stats().batched_invalidations,
        0,
        "fresh copy is renewed, not invalidated"
    );
    c1.shutdown();
    server.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn first_boot_with_stable_storage_starts_at_epoch_zero() {
    let path = stable_path("firstboot.stable");
    let net = InMemoryNetwork::new();
    let clock = WallClock::new();
    let server = LeaseServer::spawn(
        config(path.clone()),
        net.endpoint(NodeId::Server(SRV)),
        clock,
    );
    assert_eq!(server.stats().epoch, Epoch(0));
    server.create_object(OBJ, Bytes::from_static(b"v1"));
    // No pre-boot leases: writes are immediate.
    let out = server.write(OBJ, Bytes::from_static(b"v2"));
    assert!(out.delay < Duration::from_millis(200));
    server.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn double_crash_keeps_bumping_epochs() {
    let path = stable_path("double.stable");
    let net = InMemoryNetwork::new();
    let clock = WallClock::new();
    for expected in 0..3u64 {
        let server = LeaseServer::spawn(
            config(path.clone()),
            net.endpoint(NodeId::Server(SRV)),
            clock,
        );
        assert_eq!(server.stats().epoch, Epoch(expected));
        // Grant at least one volume lease so the record is persisted.
        server.create_object(OBJ, Bytes::from_static(b"x"));
        let c = CacheClient::spawn(
            ClientConfig::new(ClientId(1), SRV),
            net.endpoint(NodeId::Client(ClientId(1))),
            clock,
        );
        let _ = c.read(OBJ);
        c.shutdown();
        server.crash();
    }
    let _ = std::fs::remove_file(&path);
}
